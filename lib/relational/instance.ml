module Smap = Map.Make (String)
module Iset = Set.Make (Int)
module Vset = Set.Make (Value)

(* ------------------------------------------------------------------ *)
(* The historical representation: a functional map of tuple sets.  It is
   the qcheck oracle the columnar implementation below is differentially
   tested against (500+ cases over every operation of the interface), and
   its operational semantics — iteration order, comparison order, printed
   form — is the contract the columnar code must reproduce byte for
   byte. *)

module Naive = struct
  type t = Tuple.Set.t Smap.t

  let empty = Smap.empty
  let is_empty d = Smap.for_all (fun _ ts -> Tuple.Set.is_empty ts) d

  let add a d =
    let p = Atom.pred a and t = Atom.args a in
    let prev = Option.value ~default:Tuple.Set.empty (Smap.find_opt p d) in
    Smap.add p (Tuple.Set.add t prev) d

  let remove a d =
    let p = Atom.pred a and t = Atom.args a in
    match Smap.find_opt p d with
    | None -> d
    | Some ts ->
        let ts = Tuple.Set.remove t ts in
        if Tuple.Set.is_empty ts then Smap.remove p d else Smap.add p ts d

  let mem a d =
    match Smap.find_opt (Atom.pred a) d with
    | None -> false
    | Some ts -> Tuple.Set.mem (Atom.args a) ts

  let of_atoms atoms = List.fold_left (fun d a -> add a d) empty atoms
  let of_list l = of_atoms (List.map (fun (p, vs) -> Atom.make p vs) l)

  let fold f d acc =
    Smap.fold
      (fun p ts acc ->
        Tuple.Set.fold (fun t acc -> f (Atom.of_tuple p t) acc) ts acc)
      d acc

  let iter f d = fold (fun a () -> f a) d ()
  let atoms d = List.rev (fold (fun a acc -> a :: acc) d [])
  let atom_set d = fold Atom.Set.add d Atom.Set.empty

  let filter f d =
    Smap.filter_map
      (fun p ts ->
        let ts = Tuple.Set.filter (fun t -> f (Atom.of_tuple p t)) ts in
        if Tuple.Set.is_empty ts then None else Some ts)
      d

  let cardinal d = Smap.fold (fun _ ts n -> n + Tuple.Set.cardinal ts) d 0

  let preds d =
    Smap.fold
      (fun p ts acc -> if Tuple.Set.is_empty ts then acc else p :: acc)
      d []
    |> List.rev

  let tuples d p = Option.value ~default:Tuple.Set.empty (Smap.find_opt p d)

  let merge_with op a b =
    Smap.merge
      (fun _ x y ->
        let x = Option.value ~default:Tuple.Set.empty x in
        let y = Option.value ~default:Tuple.Set.empty y in
        let r = op x y in
        if Tuple.Set.is_empty r then None else Some r)
      a b

  let union = merge_with Tuple.Set.union
  let diff = merge_with Tuple.Set.diff
  let inter = merge_with Tuple.Set.inter
  let symdiff a b = union (diff a b) (diff b a)
  let subset a b = Smap.for_all (fun p ts -> Tuple.Set.subset ts (tuples b p)) a
  let compare a b = Smap.compare Tuple.Set.compare a b
  let equal a b = compare a b = 0

  let active_domain d =
    let vs =
      fold
        (fun a acc ->
          Array.fold_left (fun acc v -> Vset.add v acc) acc (Atom.args a))
        d Vset.empty
    in
    Vset.elements vs

  let active_domain_non_null d =
    List.filter (fun v -> not (Value.is_null v)) (active_domain d)

  let null_count d =
    fold
      (fun a n ->
        Array.fold_left
          (fun n v -> if Value.is_null v then n + 1 else n)
          n (Atom.args a))
      d 0

  let pp ppf d = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Atom.pp) (atoms d)

  let pp_inline ppf d =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Atom.pp) (atoms d)
end

(* ------------------------------------------------------------------ *)
(* Columnar representation.

   A relation is an immutable {e segment} — tuples interned through
   {!Symtab} and stored as per-attribute int columns, sorted by
   [Tuple.compare] and deduplicated, with lazily built hash indexes — plus
   a persistent overlay: a set of deleted segment row ids and a functional
   set of extra tuples.  Bulk loads ([of_atoms]) build segments directly;
   the functional [add]/[remove] of the repair search only touch the
   overlay (and compact it into a fresh segment once it outgrows the
   segment), so the interface stays persistent while membership, attribute
   probes and per-relation scans on large instances run on int arrays.

   Invariants:
   - segment rows are sorted by [Tuple.compare] and pairwise distinct;
   - [extra] never contains a segment row (re-adding a deleted row shrinks
     [del] instead), so merged iteration needs no equality case;
   - [ndel]/[nextra] mirror the overlay cardinals;
   - the per-predicate map never holds an empty relation. *)

type seg = {
  arity : int;
  nrows : int;
  cols : int array array; (* [arity] columns of [nrows] codes *)
  seg_nulls : int; (* null occurrences across all rows *)
  row_index : (int, int list) Hashtbl.t option Atomic.t;
      (* row hash -> ascending row ids *)
  attr_index : (int, int list) Hashtbl.t option Atomic.t array;
      (* per column: code -> ascending row ids *)
  seg_codes : Iset.t option Atomic.t; (* distinct codes in the segment *)
  lock : Mutex.t; (* serializes lazy index construction across domains *)
}

type rel = { seg : seg; del : Iset.t; ndel : int; extra : Tuple.Set.t; nextra : int }

type t = {
  rels : rel Smap.t;
  adom_memo : Value.t list option Atomic.t;
  nulls_memo : int option Atomic.t;
      (* Memo cells follow the segment indexes' double-checked discipline
         (fast atomic read, synchronized publish) but publish with a CAS
         instead of taking a lock: both computations are pure and
         deterministic, so two domains racing at worst duplicate work and
         agree on the value, and [mk] runs on every functional update —
         too hot to allocate a mutex per instance. *)
}

let empty_seg =
  {
    arity = 0;
    nrows = 0;
    cols = [||];
    seg_nulls = 0;
    row_index = Atomic.make None;
    attr_index = [||];
    seg_codes = Atomic.make None;
    lock = Mutex.create ();
  }

let mk rels =
  { rels; adom_memo = Atomic.make None; nulls_memo = Atomic.make None }
let empty = mk Smap.empty
let is_empty d = Smap.is_empty d.rels

(* Below this many rows a relation stays a plain tuple set: the repair
   search churns through thousands of tiny instances where interning and
   column allocation would only cost. *)
let seg_min = 8

let seg_row seg i =
  Array.init seg.arity (fun j -> Symtab.value seg.cols.(j).(i))

let row_hash seg i =
  let h = ref 17 in
  for j = 0 to seg.arity - 1 do
    h := (!h * 31) + seg.cols.(j).(i)
  done;
  !h land max_int

let codes_hash codes =
  let h = ref 17 in
  Array.iter (fun c -> h := (!h * 31) + c) codes;
  !h land max_int

let force_index cell seg build =
  match Atomic.get cell with
  | Some tbl -> tbl
  | None ->
      Mutex.lock seg.lock;
      let tbl =
        match Atomic.get cell with
        | Some tbl -> tbl
        | None ->
            let tbl = build () in
            Atomic.set cell (Some tbl);
            tbl
      in
      Mutex.unlock seg.lock;
      tbl

let force_row_index seg =
  force_index seg.row_index seg (fun () ->
      let tbl = Hashtbl.create ((2 * seg.nrows) + 1) in
      for i = seg.nrows - 1 downto 0 do
        let h = row_hash seg i in
        Hashtbl.replace tbl h
          (i :: Option.value ~default:[] (Hashtbl.find_opt tbl h))
      done;
      tbl)

let force_attr_index seg pos =
  force_index seg.attr_index.(pos) seg (fun () ->
      let tbl = Hashtbl.create ((2 * seg.nrows) + 1) in
      let col = seg.cols.(pos) in
      for i = seg.nrows - 1 downto 0 do
        let c = col.(i) in
        Hashtbl.replace tbl c
          (i :: Option.value ~default:[] (Hashtbl.find_opt tbl c))
      done;
      tbl)

let seg_codes seg =
  force_index seg.seg_codes seg (fun () ->
      let s = ref Iset.empty in
      Array.iter (fun col -> Array.iter (fun c -> s := Iset.add c !s) col) seg.cols;
      !s)

let row_equals_codes seg i codes =
  let rec go j = j >= seg.arity || (seg.cols.(j).(i) = codes.(j) && go (j + 1)) in
  go 0

let seg_find_codes seg codes =
  let tbl = force_row_index seg in
  let rec search = function
    | [] -> None
    | i :: rest -> if row_equals_codes seg i codes then Some i else search rest
  in
  search (Option.value ~default:[] (Hashtbl.find_opt tbl (codes_hash codes)))

(* Row id of the tuple in the segment, interning nothing: a tuple holding
   a never-seen constant cannot be a segment row. *)
let seg_find seg (t : Tuple.t) =
  if seg.nrows = 0 || Array.length t <> seg.arity then None
  else
    let codes = Array.make seg.arity 0 in
    let rec encode j =
      j >= seg.arity
      ||
      match Symtab.find t.(j) with
      | Some c ->
          codes.(j) <- c;
          encode (j + 1)
      | None -> false
    in
    if encode 0 then seg_find_codes seg codes else None

let build_seg ~arity (rows : Tuple.t array) =
  let nrows = Array.length rows in
  let cols = Array.init arity (fun _ -> Array.make nrows 0) in
  let nulls = ref 0 in
  for i = 0 to nrows - 1 do
    let t = rows.(i) in
    for j = 0 to arity - 1 do
      let c = Symtab.intern t.(j) in
      if c = Symtab.null_id then incr nulls;
      cols.(j).(i) <- c
    done
  done;
  {
    arity;
    nrows;
    cols;
    seg_nulls = !nulls;
    row_index = Atomic.make None;
    attr_index = Array.init arity (fun _ -> Atomic.make None);
    seg_codes = Atomic.make None;
    lock = Mutex.create ();
  }

let overlay_rel ts =
  { seg = empty_seg; del = Iset.empty; ndel = 0; extra = ts; nextra = Tuple.Set.cardinal ts }

(* Build a relation from sorted, deduplicated tuples.  Mixed arities (legal
   under set semantics, if exotic) keep the most common arity columnar and
   overflow the rest into the overlay; [Tuple.compare] orders by arity
   first, so both groups stay sorted. *)
let rel_of_sorted_array (rows : Tuple.t array) =
  let n = Array.length rows in
  if n = 0 then None
  else if n < seg_min then Some (overlay_rel (Tuple.Set.of_list (Array.to_list rows)))
  else begin
    let counts = Hashtbl.create 4 in
    Array.iter
      (fun t ->
        let a = Array.length t in
        Hashtbl.replace counts a (1 + Option.value ~default:0 (Hashtbl.find_opt counts a)))
      rows;
    let arity, _ =
      Hashtbl.fold
        (fun a c ((ba, bc) as best) ->
          if c > bc || (c = bc && a < ba) then (a, c) else best)
        counts (-1, 0)
    in
    let seg_rows, rest =
      if Hashtbl.length counts = 1 then (rows, [])
      else
        ( Array.of_list
            (List.filter (fun t -> Array.length t = arity) (Array.to_list rows)),
          List.filter (fun t -> Array.length t <> arity) (Array.to_list rows) )
    in
    Some
      {
        seg = build_seg ~arity seg_rows;
        del = Iset.empty;
        ndel = 0;
        extra = Tuple.Set.of_list rest;
        nextra = List.length rest;
      }
  end

let sort_dedup (arr : Tuple.t array) =
  Array.sort Tuple.compare arr;
  let n = Array.length arr in
  if n = 0 then arr
  else begin
    let k = ref 1 in
    for i = 1 to n - 1 do
      if Tuple.compare arr.(i) arr.(!k - 1) <> 0 then begin
        arr.(!k) <- arr.(i);
        incr k
      end
    done;
    if !k = n then arr else Array.sub arr 0 !k
  end

let rel_cardinal_of r = r.seg.nrows - r.ndel + r.nextra
let rel_is_empty r = rel_cardinal_of r = 0

let rel_mem r t =
  Tuple.Set.mem t r.extra
  ||
  match seg_find r.seg t with
  | Some i -> not (Iset.mem i r.del)
  | None -> false

(* Live tuples of a relation in [Tuple.compare] order: linear merge of the
   surviving segment rows (sorted by construction) with the overlay set. *)
let rel_to_seq r =
  let seg = r.seg in
  let uncons sq =
    match sq () with
    | Seq.Nil -> (None, Seq.empty)
    | Seq.Cons (e, sq') -> (Some e, sq')
  in
  let rec go i pending sq () =
    if i >= seg.nrows then
      match pending with
      | Some e -> Seq.Cons (e, sq)
      | None -> Seq.Nil
    else if Iset.mem i r.del then go (i + 1) pending sq ()
    else
      let t = seg_row seg i in
      match pending with
      | Some e when Tuple.compare e t < 0 ->
          let pending', sq' = uncons sq in
          Seq.Cons (e, go i pending' sq')
      | _ -> Seq.Cons (t, go (i + 1) pending sq)
  in
  let pending, sq = uncons (Tuple.Set.to_seq r.extra) in
  go 0 pending sq

let rel_fold f r acc = Seq.fold_left (fun acc t -> f t acc) acc (rel_to_seq r)
let rel_iter f r = Seq.iter f (rel_to_seq r)

let rel_live_array r =
  let n = rel_cardinal_of r in
  if n = 0 then [||]
  else begin
    let arr = Array.make n [||] in
    let i = ref 0 in
    rel_iter
      (fun t ->
        arr.(!i) <- t;
        incr i)
      r;
    arr
  end

(* Compact an overgrown overlay into a fresh segment.  The merged stream is
   already sorted and distinct, so no re-sort. *)
let compact_rel r = Option.get (rel_of_sorted_array (rel_live_array r))

let compact_threshold seg = if seg.nrows = 0 then 4096 else max 1024 (seg.nrows / 4)

let rel_add r t =
  if Tuple.Set.mem t r.extra then r
  else
    match seg_find r.seg t with
    | Some i when Iset.mem i r.del ->
        { r with del = Iset.remove i r.del; ndel = r.ndel - 1 }
    | Some _ -> r
    | None ->
        let r = { r with extra = Tuple.Set.add t r.extra; nextra = r.nextra + 1 } in
        if r.nextra > compact_threshold r.seg then compact_rel r else r

let rel_remove r t =
  if Tuple.Set.mem t r.extra then
    { r with extra = Tuple.Set.remove t r.extra; nextra = r.nextra - 1 }
  else
    match seg_find r.seg t with
    | Some i when not (Iset.mem i r.del) ->
        { r with del = Iset.add i r.del; ndel = r.ndel + 1 }
    | _ -> r

let add a d =
  let p = Atom.pred a and t = Atom.args a in
  match Smap.find_opt p d.rels with
  | None -> mk (Smap.add p (overlay_rel (Tuple.Set.singleton t)) d.rels)
  | Some r ->
      let r' = rel_add r t in
      if r' == r then d else mk (Smap.add p r' d.rels)

let remove a d =
  let p = Atom.pred a and t = Atom.args a in
  match Smap.find_opt p d.rels with
  | None -> d
  | Some r ->
      let r' = rel_remove r t in
      if r' == r then d
      else if rel_is_empty r' then mk (Smap.remove p d.rels)
      else mk (Smap.add p r' d.rels)

let mem a d =
  match Smap.find_opt (Atom.pred a) d.rels with
  | None -> false
  | Some r -> rel_mem r (Atom.args a)

let of_atoms atoms =
  let tbl : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let p = Atom.pred a in
      match Hashtbl.find_opt tbl p with
      | Some l -> l := Atom.args a :: !l
      | None -> Hashtbl.add tbl p (ref [ Atom.args a ]))
    atoms;
  let rels =
    Hashtbl.fold
      (fun p l acc ->
        match rel_of_sorted_array (sort_dedup (Array.of_list !l)) with
        | Some r -> Smap.add p r acc
        | None -> acc)
      tbl Smap.empty
  in
  mk rels

let of_list l = of_atoms (List.map (fun (p, vs) -> Atom.make p vs) l)

let fold f d acc =
  Smap.fold
    (fun p r acc -> rel_fold (fun t acc -> f (Atom.of_tuple p t) acc) r acc)
    d.rels acc

let iter f d = fold (fun a () -> f a) d ()
let atoms d = List.rev (fold (fun a acc -> a :: acc) d [])
let atom_set d = fold Atom.Set.add d Atom.Set.empty

let filter f d =
  let rels =
    Smap.filter_map
      (fun p r ->
        let kept =
          rel_fold (fun t acc -> if f (Atom.of_tuple p t) then t :: acc else acc) r []
        in
        (* [kept] is descending; reverse restores sorted order *)
        rel_of_sorted_array (Array.of_list (List.rev kept)))
      d.rels
  in
  mk rels

let cardinal d = Smap.fold (fun _ r n -> n + rel_cardinal_of r) d.rels 0
let preds d = Smap.fold (fun p _ acc -> p :: acc) d.rels [] |> List.rev

let tuples d p =
  match Smap.find_opt p d.rels with
  | None -> Tuple.Set.empty
  | Some r ->
      if r.seg.nrows = 0 then r.extra
      else Tuple.Set.of_seq (rel_to_seq r)

(* ------------------------------------------------------------------ *)
(* Set operations.  Relations sharing a segment physically — the common
   case for session deltas, where [d'] is a few [add]/[remove]s away from
   [d] — combine in time proportional to their overlays: the live rows are
   [rows \ del ∪ extra] on both sides with the same [rows], and [extra] is
   disjoint from [rows], so the tuple-level set algebra reduces to row-id
   and overlay algebra. *)

let rel_decode_rows r ids =
  Iset.fold (fun i acc -> seg_row r.seg i :: acc) ids [] |> List.rev

let rel_generic_of_tuples sorted_list =
  rel_of_sorted_array (Array.of_list sorted_list)

let merge_sorted xs ys =
  (* both sorted distinct; result sorted distinct (inputs disjoint or not) *)
  let rec go xs ys acc =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs', y :: ys' ->
        let c = Tuple.compare x y in
        if c < 0 then go xs' ys (x :: acc)
        else if c > 0 then go xs ys' (y :: acc)
        else go xs' ys' (x :: acc)
  in
  go xs ys []

let rel_union ra rb =
  if ra == rb then Some ra
  else if ra.seg == rb.seg then
    let del = Iset.inter ra.del rb.del in
    let extra = Tuple.Set.union ra.extra rb.extra in
    Some
      {
        seg = ra.seg;
        del;
        ndel = Iset.cardinal del;
        extra;
        nextra = Tuple.Set.cardinal extra;
      }
  else if ra.seg.nrows = 0 && rb.seg.nrows = 0 then
    Some (overlay_rel (Tuple.Set.union ra.extra rb.extra))
  else
    let big, small =
      if rel_cardinal_of ra >= rel_cardinal_of rb then (ra, rb) else (rb, ra)
    in
    if rel_cardinal_of small * 4 <= rel_cardinal_of big then
      Some (rel_fold (fun t r -> rel_add r t) small big)
    else
      rel_generic_of_tuples
        (merge_sorted
           (Array.to_list (rel_live_array ra))
           (Array.to_list (rel_live_array rb)))

let rel_diff ra rb =
  if ra == rb then None
  else if ra.seg == rb.seg then
    let rows = rel_decode_rows ra (Iset.diff rb.del ra.del) in
    let extra = Tuple.Set.diff ra.extra rb.extra in
    let merged = merge_sorted rows (Tuple.Set.elements extra) in
    rel_generic_of_tuples merged
  else if ra.seg.nrows = 0 && rb.seg.nrows = 0 then
    let s = Tuple.Set.diff ra.extra rb.extra in
    if Tuple.Set.is_empty s then None else Some (overlay_rel s)
  else
    let kept = rel_fold (fun t acc -> if rel_mem rb t then acc else t :: acc) ra [] in
    rel_generic_of_tuples (List.rev kept)

let rel_inter ra rb =
  if ra == rb then Some ra
  else if ra.seg == rb.seg then
    let del = Iset.union ra.del rb.del in
    let extra = Tuple.Set.inter ra.extra rb.extra in
    let r =
      {
        seg = ra.seg;
        del;
        ndel = Iset.cardinal del;
        extra;
        nextra = Tuple.Set.cardinal extra;
      }
    in
    if rel_is_empty r then None else Some r
  else if ra.seg.nrows = 0 && rb.seg.nrows = 0 then
    let s = Tuple.Set.inter ra.extra rb.extra in
    if Tuple.Set.is_empty s then None else Some (overlay_rel s)
  else
    let small, other =
      if rel_cardinal_of ra <= rel_cardinal_of rb then (ra, rb) else (rb, ra)
    in
    let kept =
      rel_fold (fun t acc -> if rel_mem other t then t :: acc else acc) small []
    in
    rel_generic_of_tuples (List.rev kept)

let merge_with op a b =
  let rels =
    Smap.merge
      (fun _ x y ->
        match (x, y) with
        | None, None -> None
        | Some _, None | None, Some _ | Some _, Some _ -> op x y)
      a.rels b.rels
  in
  mk rels

let union a b =
  if a == b then a
  else
    merge_with
      (fun x y ->
        match (x, y) with
        | Some ra, Some rb -> rel_union ra rb
        | (Some _ as r), None | None, (Some _ as r) -> r
        | None, None -> None)
      a b

let diff a b =
  if a == b then empty
  else
    merge_with
      (fun x y ->
        match (x, y) with
        | Some ra, Some rb -> rel_diff ra rb
        | (Some _ as r), None -> r
        | None, _ -> None)
      a b

let inter a b =
  if a == b then a
  else
    merge_with
      (fun x y ->
        match (x, y) with
        | Some ra, Some rb -> rel_inter ra rb
        | _ -> None)
      a b

let symdiff a b = union (diff a b) (diff b a)

let rel_subset ra rb =
  if ra == rb then true
  else if ra.seg == rb.seg then
    Iset.subset rb.del ra.del && Tuple.Set.subset ra.extra rb.extra
  else if ra.seg.nrows = 0 && rb.seg.nrows = 0 then
    Tuple.Set.subset ra.extra rb.extra
  else if rel_cardinal_of ra > rel_cardinal_of rb then false
  else not (Seq.exists (fun t -> not (rel_mem rb t)) (rel_to_seq ra))

let subset a b =
  a == b
  || Smap.for_all
       (fun p ra ->
         match Smap.find_opt p b.rels with
         | None -> rel_is_empty ra
         | Some rb -> rel_subset ra rb)
       a.rels

(* [compare] replicates the oracle's order — [Smap.compare Tuple.Set.compare]
   over the never-empty per-predicate map — exactly: lexicographic over the
   (predicate, tuple-sequence) stream, an exhausted side ordering first.
   Sorted repair lists, search-state dedup and the goldens all depend on
   this order being stable across representations. *)
let rel_compare ra rb =
  if ra == rb then 0
  else if ra.seg.nrows = 0 && rb.seg.nrows = 0 then
    Tuple.Set.compare ra.extra rb.extra
  else if
    ra.seg == rb.seg && Iset.equal ra.del rb.del && Tuple.Set.equal ra.extra rb.extra
  then 0
  else
    let rec go sa sb =
      match (sa (), sb ()) with
      | Seq.Nil, Seq.Nil -> 0
      | Seq.Nil, Seq.Cons _ -> -1
      | Seq.Cons _, Seq.Nil -> 1
      | Seq.Cons (x, sa'), Seq.Cons (y, sb') ->
          let c = Tuple.compare x y in
          if c <> 0 then c else go sa' sb'
    in
    go (rel_to_seq ra) (rel_to_seq rb)

let compare a b =
  if a == b then 0
  else
    let rec go sa sb =
      match (sa (), sb ()) with
      | Seq.Nil, Seq.Nil -> 0
      | Seq.Nil, Seq.Cons _ -> -1
      | Seq.Cons _, Seq.Nil -> 1
      | Seq.Cons ((pa, ra), sa'), Seq.Cons ((pb, rb), sb') ->
          let c = String.compare pa pb in
          if c <> 0 then c
          else
            let c = rel_compare ra rb in
            if c <> 0 then c else go sa' sb'
    in
    go (Smap.to_seq a.rels) (Smap.to_seq b.rels)

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Memoized whole-instance statistics.  Both are pure functions of the
   (immutable) contents, so racing writers at worst recompute the same
   value. *)

let rel_codes_exact r =
  (* distinct codes of the live segment rows; with deletions the cached
     per-segment code set over-approximates, so rescan the survivors *)
  if r.ndel = 0 then seg_codes r.seg
  else begin
    let s = ref Iset.empty in
    for i = 0 to r.seg.nrows - 1 do
      if not (Iset.mem i r.del) then
        for j = 0 to r.seg.arity - 1 do
          s := Iset.add r.seg.cols.(j).(i) !s
        done
    done;
    !s
  end

let active_domain d =
  match Atomic.get d.adom_memo with
  | Some vs -> vs
  | None ->
      let vs =
        Smap.fold
          (fun _ r acc ->
            let acc =
              if r.seg.nrows = 0 then acc
              else
                Iset.fold
                  (fun c acc -> Vset.add (Symtab.value c) acc)
                  (rel_codes_exact r) acc
            in
            Tuple.Set.fold
              (fun t acc ->
                Array.fold_left (fun acc v -> Vset.add v acc) acc t)
              r.extra acc)
          d.rels Vset.empty
      in
      let vs = Vset.elements vs in
      if not (Atomic.compare_and_set d.adom_memo None (Some vs)) then
        (* a racing domain published first; return its (equal) list so
           physical equality of repeated calls still holds *)
        match Atomic.get d.adom_memo with Some vs -> vs | None -> vs
      else vs

let active_domain_non_null d =
  List.filter (fun v -> not (Value.is_null v)) (active_domain d)

let null_count d =
  match Atomic.get d.nulls_memo with
  | Some n -> n
  | None ->
      let n =
        Smap.fold
          (fun _ r acc ->
            let deleted_nulls =
              if r.ndel = 0 || r.seg.seg_nulls = 0 then 0
              else
                Iset.fold
                  (fun i acc ->
                    let k = ref acc in
                    for j = 0 to r.seg.arity - 1 do
                      if r.seg.cols.(j).(i) = Symtab.null_id then incr k
                    done;
                    !k)
                  r.del 0
            in
            let extra_nulls =
              Tuple.Set.fold
                (fun t acc ->
                  Array.fold_left
                    (fun acc v -> if Value.is_null v then acc + 1 else acc)
                    acc t)
                r.extra 0
            in
            acc + r.seg.seg_nulls - deleted_nulls + extra_nulls)
          d.rels 0
      in
      ignore (Atomic.compare_and_set d.nulls_memo None (Some n));
      n

(* ------------------------------------------------------------------ *)
(* Index probes: the opt-in fast paths [Semantics.Assign] and the checkers
   build their joins on.  Positions are 0-based.  Enumeration order is
   surviving segment rows (ascending) then overlay tuples (ascending). *)

let rel_cardinal d p =
  match Smap.find_opt p d.rels with None -> 0 | Some r -> rel_cardinal_of r

let iter_rel d p f =
  match Smap.find_opt p d.rels with None -> () | Some r -> rel_iter f r

let fold_rel d p f acc =
  match Smap.find_opt p d.rels with None -> acc | Some r -> rel_fold f r acc

let exists_rel d p f =
  match Smap.find_opt p d.rels with
  | None -> false
  | Some r -> Seq.exists f (rel_to_seq r)

let iter_matching d p ~pos v f =
  match Smap.find_opt p d.rels with
  | None -> ()
  | Some r ->
      let seg = r.seg in
      (if seg.nrows > 0 && pos < seg.arity then
         match Symtab.find v with
         | None -> ()
         | Some code ->
             let idx = force_attr_index seg pos in
             List.iter
               (fun i -> if not (Iset.mem i r.del) then f (seg_row seg i))
               (Option.value ~default:[] (Hashtbl.find_opt idx code)));
      Tuple.Set.iter
        (fun t -> if Array.length t > pos && Value.equal t.(pos) v then f t)
        r.extra

let exists_matching d p ~pos v f =
  match Smap.find_opt p d.rels with
  | None -> false
  | Some r ->
      let seg = r.seg in
      (seg.nrows > 0 && pos < seg.arity
      && (match Symtab.find v with
         | None -> false
         | Some code ->
             let idx = force_attr_index seg pos in
             List.exists
               (fun i -> (not (Iset.mem i r.del)) && f (seg_row seg i))
               (Option.value ~default:[] (Hashtbl.find_opt idx code))))
      || Tuple.Set.exists
           (fun t -> Array.length t > pos && Value.equal t.(pos) v && f t)
           r.extra

(* ------------------------------------------------------------------ *)

let pp ppf d = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Atom.pp) (atoms d)

let pp_inline ppf d =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Atom.pp) (atoms d)
