(** Database instances: finite sets of ground database atoms.

    Following the paper (and deviating from SQL's bag semantics exactly as
    discussed around Example 7), an instance is a {e set} of atoms.

    The representation is columnar: constants are interned through
    {!Symtab} and each relation is stored as an immutable sorted segment of
    per-attribute int columns with lazily built hash indexes, plus a
    persistent overlay of additions and deletions so that [add]/[remove]
    stay functional and cheap.  The observable behaviour — set semantics,
    iteration order, the [compare]/[equal] total order, [pp] output — is
    byte-identical to the historical tuple-set representation, which is
    kept as {!module:Naive} and differentially tested against this one. *)

type t

val empty : t
val is_empty : t -> bool

val add : Atom.t -> t -> t
val remove : Atom.t -> t -> t
val mem : Atom.t -> t -> bool

val of_atoms : Atom.t list -> t
(** Bulk constructor: builds columnar segments directly (one sort per
    relation), the preferred way to load large instances. *)

val of_list : (string * Value.t list) list -> t
val atoms : t -> Atom.t list
val atom_set : t -> Atom.Set.t

val cardinal : t -> int
val preds : t -> string list
(** Predicates with at least one tuple, sorted. *)

val tuples : t -> string -> Tuple.Set.t
(** Tuples of one relation (empty set if none).  On columnar relations this
    materializes a set — iteration-heavy callers should prefer
    {!iter_rel}/{!fold_rel}/{!iter_matching}. *)

val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Atom.t -> unit) -> t -> unit
val filter : (Atom.t -> bool) -> t -> t

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val symdiff : t -> t -> t
(** The symmetric difference [Delta(D, D')] used to compare instances with
    their repairs (Section 4).  Instances a few updates apart share their
    segments physically, and the set operations above then run in time
    proportional to the overlay, not the instance. *)

val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val active_domain : t -> Value.t list
(** All constants occurring in the instance, [null] included if present,
    sorted and deduplicated.  Cached per instance (and per segment), so
    repeated calls — the grounder, {!Repair.Candidates} — are O(1) after
    the first. *)

val active_domain_non_null : t -> Value.t list

val null_count : t -> int
(** Number of null occurrences across all tuples.  Cached like
    {!active_domain}. *)

(** {2 Index probes}

    Opt-in fast paths for the join machinery ({!Semantics.Assign}) and the
    violation checkers.  Positions are 0-based.  Per-relation enumeration
    yields tuples in [Tuple.compare] order; {!iter_matching} and
    {!exists_matching} yield surviving segment rows (ascending, via the
    lazily built per-attribute hash index) followed by overlay tuples
    (ascending). *)

val rel_cardinal : t -> string -> int
(** Number of tuples of one relation, O(1). *)

val iter_rel : t -> string -> (Tuple.t -> unit) -> unit
val fold_rel : t -> string -> (Tuple.t -> 'a -> 'a) -> 'a -> 'a
val exists_rel : t -> string -> (Tuple.t -> bool) -> bool

val iter_matching : t -> string -> pos:int -> Value.t -> (Tuple.t -> unit) -> unit
(** [iter_matching d p ~pos v f] applies [f] to every tuple of relation [p]
    whose 0-based position [pos] holds exactly [v] (nulls match only
    [Value.null]), probing the per-attribute hash index instead of
    scanning. *)

val exists_matching : t -> string -> pos:int -> Value.t -> (Tuple.t -> bool) -> bool
(** Short-circuiting [iter_matching]: does some matching tuple satisfy the
    predicate? *)

val pp : t Fmt.t
(** One atom per line, sorted — stable output for tests and goldens. *)

val pp_inline : t Fmt.t
(** [{A(1), B(2, null)}] on one line. *)

(** {2 The oracle}

    The pre-columnar representation — a functional map of tuple sets —
    retained verbatim as the differential-testing oracle: every operation
    above is property-tested to agree with it, including the sign of
    [compare] and byte-identical [pp]. *)

module Naive : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val add : Atom.t -> t -> t
  val remove : Atom.t -> t -> t
  val mem : Atom.t -> t -> bool
  val of_atoms : Atom.t list -> t
  val of_list : (string * Value.t list) list -> t
  val atoms : t -> Atom.t list
  val atom_set : t -> Atom.Set.t
  val cardinal : t -> int
  val preds : t -> string list
  val tuples : t -> string -> Tuple.Set.t
  val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (Atom.t -> unit) -> t -> unit
  val filter : (Atom.t -> bool) -> t -> t
  val union : t -> t -> t
  val diff : t -> t -> t
  val inter : t -> t -> t
  val symdiff : t -> t -> t
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val active_domain : t -> Value.t list
  val active_domain_non_null : t -> Value.t list
  val null_count : t -> int
  val pp : t Fmt.t
  val pp_inline : t Fmt.t
end
