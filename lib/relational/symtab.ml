module Vtbl = Hashtbl.Make (Value)

let mutex = Mutex.create ()
let table : int Vtbl.t = Vtbl.create 4096

(* id -> value, published via [Atomic] so decoding never takes the lock:
   a slot is written before [count] is bumped, and both the array and the
   counter are sequentially-consistent atomics, so any reader that observes
   [i < count] also observes the write to slot [i]. *)
let values : Value.t array Atomic.t = Atomic.make (Array.make 1024 Value.Null)
let count = Atomic.make 0
let null_id = 0

let () =
  Vtbl.replace table Value.Null null_id;
  Atomic.set count 1

let size () = Atomic.get count
let is_null i = i = null_id

let value i =
  if i < 0 || i >= Atomic.get count then invalid_arg "Symtab.value: unknown code";
  (Atomic.get values).(i)

let to_string i = Value.to_string (value i)

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let find v = locked (fun () -> Vtbl.find_opt table v)

let intern v =
  locked (fun () ->
      match Vtbl.find_opt table v with
      | Some i -> i
      | None ->
          let n = Atomic.get count in
          let arr = Atomic.get values in
          let arr =
            if n >= Array.length arr then begin
              let bigger = Array.make (2 * Array.length arr) Value.Null in
              Array.blit arr 0 bigger 0 n;
              bigger
            end
            else arr
          in
          arr.(n) <- v;
          Atomic.set values arr;
          Vtbl.replace table v n;
          Atomic.incr count;
          n)
