(** Process-global symbol table interning {!Value.t} into dense int codes.

    The columnar instance representation ({!Instance}) stores tuples as int
    arrays of codes; the table is the single source of truth for the
    code <-> value bijection.  Interning is idempotent — equal values always
    receive the same code — and codes are never recycled, so a code obtained
    from any instance stays valid for the life of the process.

    The table is domain-safe: {!intern} and {!find} serialize on a private
    mutex, {!value} is a lock-free read of an atomically published array
    (the parallel repair workers of [lib/parallel] decode rows concurrently
    while the main domain may still be interning). *)

val null_id : int
(** The code of {!Value.null}, always [0] — null probes and per-segment
    null counters test codes against this constant without a lookup. *)

val intern : Value.t -> int
(** The code of the value, allocating a fresh one on first sight. *)

val find : Value.t -> int option
(** The code of the value if it has ever been interned, without allocating
    one — membership probes use this so that looking up a tuple built from
    never-seen constants is a cheap miss. *)

val value : int -> Value.t
(** Decode.  @raise Invalid_argument on a code never handed out. *)

val to_string : int -> string
(** [Value.to_string (value i)] — the canonical, process-independent
    rendering used by content-addressed fingerprints
    ({!Repair.Decompose.fingerprint}); never the physical code itself. *)

val is_null : int -> bool
val size : unit -> int
(** Number of interned values (monotone). *)
