module Instance = Relational.Instance
module Decompose = Repair.Decompose

type verdict = {
  tier : Budget.tier;
  reason : string;
  direct : Direct.analysis option;
}

let component (c : Decompose.component) =
  let base = Instance.union c.Decompose.sub c.Decompose.support in
  match Direct.analyze ~base c.Decompose.ics with
  | Ok a ->
      {
        tier = Budget.Direct;
        reason = "deletion-only constraints, null-free binary conflicts";
        direct = Some a;
      }
  | Error why -> (
      match
        Result.bind
          (Ic.Classify.supported_by_repair_program c.Decompose.ics)
          (fun () ->
            (* Example 20: a NOT NULL constraint on a RIC's existential
               attribute makes the repair program's null-insertions
               infeasible, so its repair set diverges from the
               model-theoretic one — only enumeration is sound here. *)
            Result.map_error
              (fun (nnc, ic) ->
                Printf.sprintf
                  "NOT NULL-constraint '%s' conflicts with the existential \
                   attribute of '%s' (Example 20): the repair program's \
                   null-insertions are infeasible"
                  (Ic.Constr.label nnc) (Ic.Constr.label ic))
              (Ic.Builder.non_conflicting c.Decompose.ics))
      with
      | Error msg -> { tier = Budget.Enumerated; reason = msg; direct = None }
      | Ok () ->
          if Core.Hcfcheck.static_hcf c.Decompose.ics then
            { tier = Budget.Shifted; reason = why; direct = None }
          else
            let reason =
              match Core.Hcfcheck.offending c.Decompose.ics with
              | Some ic ->
                  Printf.sprintf
                    "constraint '%s' repeats a bilateral predicate: repair \
                     program not statically HCF"
                    (Ic.Constr.label ic)
              | None -> "repair program not statically HCF"
            in
            { tier = Budget.Disjunctive; reason; direct = None })

let plan (p : Decompose.plan) = List.map component p.Decompose.components

let pp_verdict ppf v = Fmt.pf ppf "%a: %s" Budget.pp_tier v.tier v.reason
