module Atom = Relational.Atom
module Instance = Relational.Instance
module Nullsat = Semantics.Nullsat

type group = { members : Atom.Set.t; classes : Atom.t list list }
type analysis = { base : Instance.t; forced : Atom.Set.t; groups : group list }

(* Soundness sketch (full argument in DESIGN.md 5.8).  With deletion-only
   constraints every search state is a subset of [base], so a repair's
   delta is its deleted set and consistency means the deleted set hits
   every base violation.  A consistent state whose deleted set strictly
   contains a minimal hitting set H is always [<]-dominated by H: the
   covering clause of [<=_D] needs a witness in [delta(H) \ delta(state)],
   which is empty.  Between two minimal hitting sets the only atoms that
   can sit in one delta and not the other are class atoms of the remaining
   binary violations — the null-free guard makes the order plain set
   inclusion there, and distinct minimal hitting sets are incomparable.
   So minimal hitting sets = [<=_D]-minimal repairs, byte for byte. *)

let distinct_matched (v : Nullsat.violation) =
  List.sort_uniq Atom.compare v.Nullsat.matched

let analyze ~base ics =
  let insertion_capable =
    List.find_opt (fun ic -> not (Ic.Classify.is_deletion_only ic)) ics
  in
  match insertion_capable with
  | Some ic ->
      Error
        (Printf.sprintf
           "constraint '%s' can repair by insertion (non-empty consequent)"
           (Ic.Constr.label ic))
  | None -> (
      let violations = Nullsat.check base ics in
      let matched = List.map distinct_matched violations in
      match List.find_opt (fun m -> m = []) matched with
      | Some _ -> Error "a violation matches no tuple (unrepairable)"
      | None -> (
          let forced =
            List.fold_left
              (fun acc m ->
                match m with [ a ] -> Atom.Set.add a acc | _ -> acc)
              Atom.Set.empty matched
          in
          let remaining =
            List.filter
              (fun m -> not (List.exists (fun a -> Atom.Set.mem a forced) m))
              matched
          in
          let non_binary =
            List.find_opt (fun m -> List.length m <> 2) remaining
          in
          match non_binary with
          | Some m ->
              Error
                (Printf.sprintf
                   "a conflict involves %d tuples (direct tier handles \
                    binary conflicts only)"
                   (List.length m))
          | None -> (
              match
                List.find_opt
                  (fun m -> List.exists Atom.has_null m)
                  remaining
              with
              | Some m ->
                  let a = List.find Atom.has_null m in
                  Error
                    (Printf.sprintf
                       "conflicting tuple %s carries a null (<=_D is not \
                        plain set inclusion here)"
                       (Atom.to_string a))
              | None -> (
                  (* conflict graph of the remaining binary violations *)
                  let adj : (Atom.t, Atom.Set.t) Hashtbl.t =
                    Hashtbl.create 64
                  in
                  let neighbours a =
                    Option.value ~default:Atom.Set.empty (Hashtbl.find_opt adj a)
                  in
                  let add_edge a b =
                    Hashtbl.replace adj a (Atom.Set.add b (neighbours a));
                    Hashtbl.replace adj b (Atom.Set.add a (neighbours b))
                  in
                  List.iter
                    (fun m ->
                      match m with
                      | [ a; b ] -> add_edge a b
                      | _ -> assert false)
                    remaining;
                  let vertices =
                    Hashtbl.fold (fun a _ acc -> Atom.Set.add a acc) adj
                      Atom.Set.empty
                  in
                  (* connected groups, deterministic by smallest member *)
                  let visited = Hashtbl.create 64 in
                  let component_of seed =
                    let rec go frontier acc =
                      match frontier with
                      | [] -> acc
                      | a :: rest ->
                          if Hashtbl.mem visited a then go rest acc
                          else begin
                            Hashtbl.add visited a ();
                            let next =
                              Atom.Set.fold
                                (fun b fr ->
                                  if Hashtbl.mem visited b then fr
                                  else b :: fr)
                                (neighbours a) rest
                            in
                            go next (Atom.Set.add a acc)
                          end
                    in
                    go [ seed ] Atom.Set.empty
                  in
                  let groups_members =
                    Atom.Set.fold
                      (fun a acc ->
                        if Hashtbl.mem visited a then acc
                        else component_of a :: acc)
                      vertices []
                    |> List.rev
                  in
                  (* Non-adjacency classes.  Complete multipartite means a
                     member's neighbours are exactly the other classes, so
                     class-of(a) = members \ neighbours(a); verifying that
                     equality for every member both builds the classes and
                     certifies the shape. *)
                  let classify members =
                    let classes = ref [] in
                    let assigned = Hashtbl.create 16 in
                    let ok =
                      Atom.Set.for_all
                        (fun a ->
                          let cls = Atom.Set.diff members (neighbours a) in
                          (if not (Hashtbl.mem assigned a) then begin
                             Atom.Set.iter
                               (fun b -> Hashtbl.replace assigned b ())
                               cls;
                             classes := Atom.Set.elements cls :: !classes
                           end);
                          (* a's class must be an independent set and fully
                             adjacent to the rest of the group *)
                          Atom.Set.for_all
                            (fun b ->
                              Atom.Set.equal
                                (Atom.Set.inter (neighbours b) members)
                                (Atom.Set.diff members cls))
                            cls)
                        members
                    in
                    if ok then Some (List.rev !classes) else None
                  in
                  let rec build acc = function
                    | [] -> Ok { base; forced; groups = List.rev acc }
                    | members :: rest -> (
                        match classify members with
                        | Some classes ->
                            build ({ members; classes } :: acc) rest
                        | None ->
                            Error
                              "a conflict group is not complete \
                               multipartite (mixed constraint overlap)")
                  in
                  build [] groups_members))))

let repair_count a =
  List.fold_left (fun acc g -> acc * List.length g.classes) 1 a.groups

let minimal_repairs ?budget a =
  (* kept0 = base minus forced minus every group member; each repair adds
     back one chosen class per group *)
  let kept0 =
    let d = Atom.Set.fold Instance.remove a.forced a.base in
    List.fold_left
      (fun d g -> Atom.Set.fold Instance.remove g.members d)
      d a.groups
  in
  let rec expand kept = function
    | [] ->
        (match budget with Some b -> Budget.check_deadline b | None -> ());
        [ kept ]
    | g :: rest ->
        List.concat_map
          (fun cls ->
            let kept' = List.fold_left (fun d x -> Instance.add x d) kept cls in
            expand kept' rest)
          g.classes
  in
  List.sort_uniq Instance.compare (expand kept0 a.groups)
