(** Per-component routing verdicts for the [Auto] CQA method.

    Each conflict component of a {!Repair.Decompose.plan} is classified
    to the cheapest engine tier that is sound for its constraint slice
    (cheapest first, {!Budget.tier}):

    + {b Direct} — {!Direct.analyze} accepts the component: minimal
      repairs are read off in polynomial time, no search at all;
    + {b Shifted} — the slice is inside Definition 9's program classes
      and statically HCF (Theorem 5), so the repair program runs as a
      shifted normal program (Corollary 1 regime);
    + {b Disjunctive} — programmable but without the static HCF
      guarantee: full disjunctive stable-model search;
    + {b Enumerated} — outside the program classes (general existential
      constraints), or an Example 20 conflict (a NOT NULL constraint on
      a RIC's existential attribute, where the program's null-insertions
      are infeasible and its repair set diverges from the
      model-theoretic one): state-space enumeration.

    Classification is purely syntactic on the component's IC slice plus
    the polynomial {!Direct.analyze} pass over its violations; it never
    runs a search, so routing cost is negligible next to any engine. *)

type verdict = {
  tier : Budget.tier;  (** the chosen engine tier *)
  reason : string;
      (** why this tier: for [Direct] the accepting shape, otherwise the
          reason the cheaper tiers were rejected *)
  direct : Direct.analysis option;
      (** the accepted analysis when [tier = Direct] — the evaluator
          reuses it instead of re-analyzing *)
}

val component : Repair.Decompose.component -> verdict
(** Classify one component (its [sub] with [support], under its IC
    slice). *)

val plan : Repair.Decompose.plan -> verdict list
(** Classify every component, in plan order. *)

val pp_verdict : verdict Fmt.t
(** ["tier: reason"]. *)
