(** Repair-less polynomial CQA building block: the direct computation of
    minimal repairs for deletion-only conflict components, after Laurent &
    Spyratos ("Consistent Query Answering without Repairs in Tables with
    Nulls and Functional Dependencies").

    When every constraint of a component is deletion-only
    ({!Ic.Classify.is_deletion_only}), violations are anti-monotone under
    deletion: a sub-instance is consistent iff the deleted set hits every
    violation of the base, so repairs are hitting sets and no state-space
    search is needed.  {!analyze} additionally verifies the two conditions
    under which the minimal hitting sets can be read off in polynomial
    time {e and} coincide byte-for-byte with the [<=_D]-minimal repairs of
    the enumerate engine:

    - {b forced deletions}: a violation matching exactly one distinct
      tuple forces that tuple out of every repair;
    - the remaining violations are {b binary} (two distinct tuples), their
      tuples are {b null-free} — so condition (b) of [<=_D] never fires on
      a repair difference and the order degenerates to set inclusion — and
      each connected conflict group is {b complete multipartite}, which is
      exactly the shape FDs induce (classes = tuples agreeing on the
      dependent value): the minimal hitting sets of a group are
      [group \ class], one per class.

    Anything outside this shape is rejected with a reason, and the router
    falls through to the program/enumerate tiers. *)

type group = {
  members : Relational.Atom.Set.t;
      (** the tuples of one connected conflict group *)
  classes : Relational.Atom.t list list;
      (** the non-adjacency classes, each sorted; keeping exactly one
          class (deleting the rest) is a minimal repair of the group *)
}

type analysis = {
  base : Relational.Instance.t;  (** the analyzed component slice *)
  forced : Relational.Atom.Set.t;
      (** tuples deleted in every repair (singleton-match violations) *)
  groups : group list;  (** deterministic order (by smallest member) *)
}

val analyze :
  base:Relational.Instance.t ->
  Ic.Constr.t list ->
  (analysis, string) result
(** Classify [base] under the component's constraints.  [Error reason]
    when any constraint can repair by insertion, a remaining conflict is
    non-binary, a conflicting tuple carries a null, or a conflict group is
    not complete multipartite. *)

val repair_count : analysis -> int
(** Product of class counts over the groups — computed without
    materializing the repairs. *)

val minimal_repairs :
  ?budget:Budget.ctl -> analysis -> Relational.Instance.t list
(** The [<=_D]-minimal repairs of the analyzed component, sorted by
    [Instance.compare] and deduplicated — byte-identical to
    [Repair.Order.minimal_among ~d:base (Repair.Enumerate.search base ics)].
    [budget] contributes its deadline (one check per repair built).
    @raise Budget.Exhausted on deadline. *)
