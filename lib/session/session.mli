(** The incremental session engine: a long-lived instance served with
    delta updates, incremental violation and plan maintenance, and a
    component-keyed cache in front of the per-component repair solves.

    A session holds one instance and one constraint set.  Updates arrive as
    {!Delta} batches and are folded in incrementally: violations through
    {!Semantics.Nullsat.check_delta} (only constraints whose relations the
    delta touches are re-examined), the conflict-component plan through
    {!Repair.Decompose.refresh} (re-planned only when the delta intersects
    the active/support region).  Requests ([repairs], [cqa]) then solve the
    plan's components through a bounded LRU cache keyed by
    {!Repair.Decompose.fingerprint} — a component untouched since the last
    request is never solved again.

    {b Correctness contract}: after any delta sequence, [repairs] and
    [cqa] return byte-identical results to a cold one-shot run
    ([Repair.Enumerate.repairs ~decompose:true] /
    [Core.Engine.repairs ~decompose:true] /
    [Query.Cqa.consistent_answers ~decompose:true]) on the final instance.
    This holds by construction — the plan is either provably the cold plan
    (refresh) or freshly computed, the cache key covers every input of a
    component solve, the solve code paths are shared with the cold
    engines, and the answer algebra is {!Query.Cqa.factorized_outcome}
    itself — and is enforced by the qcheck differential in
    [test_session.ml]. *)

module Lru = Lru
(** Re-exported so library consumers (the facade exposes only this module)
    can reach the cache implementation directly. *)

type engine =
  | Enumerate  (** the model-theoretic search ({!Repair.Enumerate}) *)
  | Program    (** the logic-program engine ({!Core.Engine}) *)
  | Auto
      (** route each component to the cheapest sound tier ({!Route.Tier}):
          the repair-less direct computation, the repair program, or
          enumeration as last resort.  The routing verdict is stored in
          the cache entry, so a cache hit re-counts its tier without
          re-classifying the component.  On an inexact component product
          the whole plan downgrades to the enumerate strategy (sharing its
          cache entries), with a degradation note in the request budget's
          stats. *)

type t

(** The component cache, shareable across sessions.  By default every
    session owns a private cache; a server passes one [Cache.t] to every
    {!create} so identical components across sessions (fingerprint keys
    are content-addressed) become cross-session hits.  Thread-safe: the
    underlying {!Lru} is mutex-guarded and the cross-hit/session counters
    are atomic. *)
module Cache : sig
  type t

  type stats = {
    hits : int;         (** probes answered, all sessions *)
    misses : int;
    evictions : int;
    entries : int;      (** current residency *)
    capacity : int;
    cross_hits : int;   (** hits on an entry another session solved *)
    sessions : int;     (** sessions ever attached to this cache *)
  }

  val create : capacity:int -> t
  val stats : t -> stats

  val hit_rate : stats -> float
  (** [hits / (hits + misses)]; [0.] before any probe. *)

  val cross_hit_rate : stats -> float
  (** [cross_hits / hits]; [0.] before any hit.  Strictly positive once
      any session benefits from another's solve. *)

  val pp_stats : stats Fmt.t
end

type stats = {
  deltas : int;          (** update batches applied *)
  requests : int;        (** [repairs] + [cqa] requests served *)
  plan_reuses : int;     (** deltas whose plan was kept by {!Repair.Decompose.refresh} *)
  plan_rebuilds : int;   (** plans computed from scratch (incl. the first) *)
  ics_reused : int;      (** accumulated {!Semantics.Nullsat.delta_stats} *)
  ics_fast : int;
  ics_rescanned : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;   (** current residency *)
  routed : int array;
      (** components served per routing tier (indexed direct, shifted,
          disjunctive, enumerate), across hits and solves; all zero
          outside the [Auto] engine *)
}

val create :
  ?engine:engine ->
  ?jobs:int ->
  ?max_effort:int ->
  ?capacity:int ->
  ?cache:Cache.t ->
  ?violations:Semantics.Nullsat.violation list ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  t
(** [engine] defaults to [Program], [jobs] to [1], [capacity] (cache
    entries) to [256]; [max_effort] bounds each component solve (states
    for [Enumerate], solver decisions for [Program]) and is part of the
    cache key.  [cache] shares a process-global component cache (then
    [capacity] is ignored); the per-session [stats] keep counting only
    this session's probes.  [violations] short-circuits the initial
    violation scan with a precomputed canonical set — a server creating
    thousands of sessions over one shared base instance computes it once.
    Otherwise violations of the initial instance are computed here; the
    first plan is computed lazily by the first request. *)

val cache : t -> Cache.t
(** The cache this session probes — its own private one unless [create]
    was given a shared one. *)

val instance : t -> Relational.Instance.t
val constraints : t -> Ic.Constr.t list

val violations : t -> Semantics.Nullsat.violation list
(** Current violation set, canonically ordered
    ({!Semantics.Nullsat.canonical_violations}) — maintained
    incrementally, never recomputed wholesale after [create]. *)

val consistent : t -> bool

val apply : t -> Delta.t -> unit
(** Fold an update batch into the session: instance, violations and (when
    provably unaffected) the plan.  A batch with no net effect only counts
    toward [deltas]. *)

val repairs : ?budget:Budget.ctl -> t -> (Relational.Instance.t list, string) result
(** The full repair set of the current instance, identical to the cold
    decomposed engines'.  [budget] is this request's budget (one per
    request); like the cold engines, the full set cannot degrade — a
    budget trip is an [Error].  Cached component solves cost nothing
    against it. *)

val cqa :
  ?budget:Budget.ctl ->
  ?semantics:Query.Qeval.semantics ->
  t ->
  Query.Qsyntax.t ->
  (Query.Cqa.outcome, string) result
(** Consistent answers on the current instance, identical to
    [Query.Cqa.consistent_answers ~decompose:true ~method_] with the
    session's engine — including the partial-outcome behavior on budget
    exhaustion and every fallback (consistent instance, inexact product
    with the program engine). *)

val stats : t -> stats
val hit_rate : stats -> float
(** [cache_hits / (cache_hits + cache_misses)]; [0.] before any probe. *)

val pp_stats : stats Fmt.t
