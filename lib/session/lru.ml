(* Classic intrusive doubly-linked list over a hash table: O(1) find,
   promote, insert and evict.  [first] is most-recently-used, [last] the
   eviction candidate.

   All operations take [t.lock]: the process-global component cache is
   probed and filled from every server connection thread and worker
   domain, and an intrusive list corrupts spectacularly under unguarded
   concurrent rewiring (a half-unlinked node turns promotion into a
   cycle).  A single mutex is enough — every operation is O(1) and the
   critical sections are a handful of pointer writes, so contention is
   dwarfed by the component solves the cache fronts. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  cap : int;
  lock : Mutex.t;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;
  mutable last : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    cap = capacity;
    lock = Mutex.create ();
    table = Hashtbl.create (max 16 capacity);
    first = None;
    last = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let capacity t = t.cap
let length t = locked t (fun () -> Hashtbl.length t.table)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t k =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let add t k v =
  if t.cap > 0 then
    locked t @@ fun () ->
    match Hashtbl.find_opt t.table k with
    | Some n ->
        n.value <- v;
        unlink t n;
        push_front t n
    | None ->
        let n = { key = k; value = v; prev = None; next = None } in
        push_front t n;
        Hashtbl.replace t.table k n;
        if Hashtbl.length t.table > t.cap then (
          match t.last with
          | Some victim ->
              unlink t victim;
              Hashtbl.remove t.table victim.key;
              t.evictions <- t.evictions + 1
          | None -> assert false)

let mem t k = locked t (fun () -> Hashtbl.mem t.table k)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None
