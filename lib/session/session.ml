module Lru = Lru
module Instance = Relational.Instance
module Nullsat = Semantics.Nullsat
module Decompose = Repair.Decompose

type engine = Enumerate | Program | Auto

(* A cached component solve.  [minimal] are the locally <=_D-minimal
   repairs; [states] carries the full consistent state list for
   [Enumerate] (needed by the inexact-product recombination) and is [None]
   for [Program].  [tier] is the routing verdict for [Auto] entries — a
   cache hit re-counts the tier without re-classifying the component. *)
type entry = {
  minimal : Instance.t list;
  states : Instance.t list option;
  tier : Budget.tier option;
}

(* The concrete per-component strategy.  [Auto] downgrades to the
   enumerate engine when the component product is inexact: per-component
   minimal repairs do not recombine exactly there, so the request needs
   the full consistent state lists for global filtering, which only the
   model-theoretic search yields. *)
type strategy = Senum | Sprog | Sroute

(* ------------------------------------------------------------------ *)
(* The component cache, shareable across sessions.  Entries are tagged
   with the session id that solved them, so a hit on another session's
   entry — the payoff of promoting the cache process-global — is counted
   separately ([cross_hits]).  Fingerprint keys are content-addressed
   (strategy + effort + component digest), so sharing is sound: two
   sessions producing the same key would solve to the same entry.
   Thread-safety comes from {!Lru} (every operation is mutex-guarded) and
   the atomic cross-hit/session counters. *)

module Cache = struct
  type nonrec t = {
    lru : (string, entry * int) Lru.t;
    cross_hits : int Atomic.t;
    sessions : int Atomic.t;  (* sessions ever attached *)
  }

  type stats = {
    hits : int;
    misses : int;
    evictions : int;
    entries : int;
    capacity : int;
    cross_hits : int;
    sessions : int;
  }

  let create ~capacity =
    {
      lru = Lru.create ~capacity;
      cross_hits = Atomic.make 0;
      sessions = Atomic.make 0;
    }

  let attach (t : t) = Atomic.incr t.sessions

  let find (t : t) ~sid key =
    match Lru.find t.lru key with
    | Some (e, owner) ->
        if owner <> sid then Atomic.incr t.cross_hits;
        Some e
    | None -> None

  let add (t : t) ~sid key e = Lru.add t.lru key (e, sid)

  let stats (t : t) =
    {
      hits = Lru.hits t.lru;
      misses = Lru.misses t.lru;
      evictions = Lru.evictions t.lru;
      entries = Lru.length t.lru;
      capacity = Lru.capacity t.lru;
      cross_hits = Atomic.get t.cross_hits;
      sessions = Atomic.get t.sessions;
    }

  let hit_rate (s : stats) =
    let probes = s.hits + s.misses in
    if probes = 0 then 0. else float_of_int s.hits /. float_of_int probes

  let cross_hit_rate (s : stats) =
    if s.hits = 0 then 0.
    else float_of_int s.cross_hits /. float_of_int s.hits

  let pp_stats ppf (s : stats) =
    Fmt.pf ppf
      "@[<h>cache: sessions=%d entries=%d/%d hits=%d misses=%d evictions=%d \
       cross.hits=%d cross.rate=%.2f@]"
      s.sessions s.entries s.capacity s.hits s.misses s.evictions s.cross_hits
      (cross_hit_rate s)
end

(* Session ids are process-global so owner tags stay distinct across every
   cache a session might share. *)
let next_sid = Atomic.make 1

type stats = {
  deltas : int;
  requests : int;
  plan_reuses : int;
  plan_rebuilds : int;
  ics_reused : int;
  ics_fast : int;
  ics_rescanned : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  routed : int array;
}

type t = {
  engine : engine;
  jobs : int;
  max_effort : int option;
  ics : Ic.Constr.t list;
  sid : int;  (* owner tag for cache entries *)
  cache : Cache.t;  (* private by default, shared under a server *)
  routed : int array;  (* components per Budget.tier, [Auto] only *)
  mutable d : Instance.t;
  mutable violations : Nullsat.violation list;  (* canonical order *)
  mutable plan : Decompose.plan option;  (* None = must re-plan *)
  mutable deltas : int;
  mutable requests : int;
  mutable plan_reuses : int;
  mutable plan_rebuilds : int;
  mutable ics_reused : int;
  mutable ics_fast : int;
  mutable ics_rescanned : int;
  (* per-session probe counters: with a shared cache the LRU's totals mix
     every session's traffic, but this session's stats line must keep
     describing this session *)
  mutable s_hits : int;
  mutable s_misses : int;
}

let create ?(engine = Program) ?(jobs = 1) ?max_effort ?(capacity = 256)
    ?cache ?violations d ics =
  let cache =
    match cache with Some c -> c | None -> Cache.create ~capacity
  in
  Cache.attach cache;
  {
    engine;
    jobs;
    max_effort;
    ics;
    sid = Atomic.fetch_and_add next_sid 1;
    cache;
    routed = Array.make 4 0;
    d;
    violations =
      (match violations with
      | Some vs -> vs
      | None -> Nullsat.canonical_violations (Nullsat.check d ics));
    plan = None;
    deltas = 0;
    requests = 0;
    plan_reuses = 0;
    plan_rebuilds = 0;
    ics_reused = 0;
    ics_fast = 0;
    ics_rescanned = 0;
    s_hits = 0;
    s_misses = 0;
  }

let cache_find t key =
  match Cache.find t.cache ~sid:t.sid key with
  | Some e ->
      t.s_hits <- t.s_hits + 1;
      Some e
  | None ->
      t.s_misses <- t.s_misses + 1;
      None

let cache_add t key e = Cache.add t.cache ~sid:t.sid key e
let cache t = t.cache

let instance t = t.d
let constraints t = t.ics
let violations t = t.violations
let consistent t = t.violations = []

(* ------------------------------------------------------------------ *)
(* Delta application: incremental violation maintenance, then plan
   refresh.  The plan is dropped (not eagerly recomputed) when refresh
   cannot prove it survives — the next request re-plans under its own
   budget. *)

let apply t ops =
  t.deltas <- t.deltas + 1;
  let inserted, deleted = Delta.effective ops t.d in
  match (inserted, deleted) with
  | [], [] -> ()
  | _ ->
      let d' = Delta.apply ops t.d in
      let vs, ds =
        Nullsat.check_delta ~before:t.violations ~inserted ~deleted d' t.ics
      in
      t.ics_reused <- t.ics_reused + ds.Nullsat.reused;
      t.ics_fast <- t.ics_fast + ds.Nullsat.fast;
      t.ics_rescanned <- t.ics_rescanned + ds.Nullsat.rescanned;
      let violations_unchanged =
        List.equal
          (fun a b -> Nullsat.compare_violation a b = 0)
          t.violations vs
      in
      (match t.plan with
      | None -> ()
      | Some p -> (
          match
            Decompose.refresh p d' t.ics ~inserted ~deleted
              ~violations_unchanged
          with
          | Some p' ->
              t.plan_reuses <- t.plan_reuses + 1;
              t.plan <- Some p'
          | None -> t.plan <- None));
      t.d <- d';
      t.violations <- vs

(* ------------------------------------------------------------------ *)
(* Plan and cache plumbing *)

(* Budget exhaustion during planning becomes an [Error], exactly as in the
   cold engines. *)
let with_plan ?budget t f =
  match
    match t.plan with
    | Some p -> p
    | None ->
        let p = Decompose.plan ?budget t.d t.ics in
        t.plan_rebuilds <- t.plan_rebuilds + 1;
        t.plan <- Some p;
        p
  with
  | p -> f p
  | exception Budget.Exhausted e -> Error (Budget.message e)

let effort_tag t =
  match t.max_effort with None -> "-" | Some n -> string_of_int n

let strategy t (plan : Decompose.plan) =
  match t.engine with
  | Enumerate -> Senum
  | Program -> Sprog
  | Auto -> if plan.Decompose.product_exact then Sroute else Senum

let tier_slot = function
  | Budget.Direct -> 0
  | Budget.Shifted -> 1
  | Budget.Disjunctive -> 2
  | Budget.Enumerated -> 3

(* The cache key covers everything a component solve depends on: the
   solve strategy, the effort bound, and the content fingerprint —
   including the plan-global universe and NNC positions for the enumerate
   strategy, whose insertion candidates range over them; the program
   engine regenerates its candidates from the slice, so its entries
   survive universe drift.  [Auto] on an inexact plan IS the enumerate
   strategy, so it shares the [enum:] entries; its routed solves carry
   the universe too — the Enumerated tier searches over it. *)
let component_key t (plan : Decompose.plan) c =
  match strategy t plan with
  | Senum ->
      Printf.sprintf "enum:%s:%s" (effort_tag t)
        (Decompose.fingerprint ~universe:plan.Decompose.universe
           ~nnc_positions:plan.Decompose.nnc_positions c)
  | Sprog -> Printf.sprintf "prog:%s:%s" (effort_tag t) (Decompose.fingerprint c)
  | Sroute ->
      Printf.sprintf "auto:%s:%s" (effort_tag t)
        (Decompose.fingerprint ~universe:plan.Decompose.universe
           ~nnc_positions:plan.Decompose.nnc_positions c)

(* Whole-instance key for the monolithic program-engine fallback
   (inexact product): digest of the instance and the constraint list. *)
let mono_key t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "%a" Instance.pp t.d);
  List.iter
    (fun ic ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf (Ic.Constr.to_string ic))
    t.ics;
  Printf.sprintf "mono:%s:%s" (effort_tag t)
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

let component_base (c : Decompose.component) =
  Instance.union c.Decompose.sub c.Decompose.support

(* One component solved from scratch — the exact code paths of the cold
   engines ({!Repair.Enumerate.decomposed} / {!Core.Engine.solve_components}
   on a single-component plan), so a cached entry is indistinguishable
   from a cold solve. *)
type solved = Entry of entry | Exhausted of Budget.exhausted | Err of string

let solve_component ?budget t (plan : Decompose.plan) (c : Decompose.component)
    =
  let base = component_base c in
  let enumerate ~tier () =
    let counter = ref 0 in
    match
      Repair.Enumerate.search ?budget ?max_states:t.max_effort
        ~universe:plan.Decompose.universe
        ~nnc_positions:plan.Decompose.nnc_positions ~explored:counter base
        c.Decompose.ics
    with
    | states ->
        (match budget with
        | Some b -> Budget.note_worker_component b
        | None -> ());
        Entry
          {
            minimal = Repair.Order.minimal_among ~d:base states;
            states = Some states;
            tier;
          }
    | exception Repair.Enumerate.Budget_exceeded n ->
        Exhausted (Budget.States n)
    | exception Budget.Exhausted e -> Exhausted e
  in
  let program ~tier () =
    match
      Core.Engine.solve_components ?budget ?max_decisions:t.max_effort
        { plan with Decompose.components = [ c ] }
    with
    | Error msg -> Err msg
    | Ok { Core.Engine.exhausted = Some e; _ } -> Exhausted e
    | Ok { Core.Engine.solved = [ reps ]; _ } ->
        Entry { minimal = reps; states = None; tier }
    | Ok _ -> assert false
  in
  match strategy t plan with
  | Senum -> enumerate ~tier:None ()
  | Sprog -> program ~tier:None ()
  | Sroute -> (
      let v = Route.Tier.component c in
      match v.Route.Tier.tier with
      | Budget.Direct -> (
          match
            Route.Direct.minimal_repairs ?budget
              (Option.get v.Route.Tier.direct)
          with
          | reps ->
              (match budget with
              | Some b -> Budget.note_worker_component b
              | None -> ());
              Entry
                { minimal = reps; states = None; tier = Some Budget.Direct }
          | exception Budget.Exhausted e -> Exhausted e)
      | (Budget.Shifted | Budget.Disjunctive) as tr ->
          program ~tier:(Some tr) ()
      | Budget.Enumerated -> enumerate ~tier:(Some Budget.Enumerated) ())

(* Solve every component of the plan through the cache.  Misses run on the
   pool when [jobs > 1]; the merge scans in plan order and applies the
   cold engines' prefix rule — everything from the first budget trip on
   degrades to its unrepaired base slice, cache hits included, so the
   partial shape matches a cold run's.  Successful solves are cached even
   past the trip point (the work is done; only this request's answer may
   not use it). *)
let solve_all ?budget t (plan : Decompose.plan) =
  let probed =
    List.map
      (fun c ->
        let key = component_key t plan c in
        (c, key, cache_find t key))
      plan.Decompose.components
  in
  let misses = List.filter (fun (_, _, v) -> Option.is_none v) probed in
  let results =
    if t.jobs <= 1 || List.length misses <= 1 then
      (* sequential: solve misses in plan order, stop at the first trip so
         no budget is spent past it (the cold sequential behavior) *)
      let rec seq acc stopped = function
        | [] -> List.rev acc
        | (c, key, cached) :: rest -> (
            match cached with
            | Some e -> seq ((key, c, `Hit e) :: acc) stopped rest
            | None ->
                if stopped then seq ((key, c, `Unsolved) :: acc) stopped rest
                else (
                  match solve_component ?budget t plan c with
                  | Entry e -> seq ((key, c, `Solved e) :: acc) stopped rest
                  | Exhausted ex -> seq ((key, c, `Trip ex) :: acc) true rest
                  | Err m -> seq ((key, c, `Err m) :: acc) true rest))
      in
      seq [] false probed
    else
      let miss_results =
        Parallel.Pool.with_pool ~jobs:t.jobs
          ~init:(fun w -> Budget.set_worker_slot (w + 1))
          (fun pool ->
            Parallel.Pool.map pool
              (fun (c, _, _) -> solve_component ?budget t plan c)
              misses)
      in
      (* reassemble in plan order: hits keep their entry, misses consume
         the pool results in order *)
      let rec assemble acc probed miss_results =
        match probed with
        | [] -> List.rev acc
        | (c, key, Some e) :: rest ->
            assemble ((key, c, `Hit e) :: acc) rest miss_results
        | (c, key, None) :: rest -> (
            match miss_results with
            | r :: mrest ->
                let tag =
                  match r with
                  | Entry e -> `Solved e
                  | Exhausted ex -> `Trip ex
                  | Err m -> `Err m
                in
                assemble ((key, c, tag) :: acc) rest mrest
            | [] -> assert false)
      in
      assemble [] probed miss_results
  in
  let filler c =
    let base = component_base c in
    {
      minimal = [ base ];
      states = (if strategy t plan = Senum then Some [ base ] else None);
      tier = None;
    }
  in
  (* tier accounting happens here on the coordinator, for hits (stored
     verdict — no re-classification) and kept solves alike, so the routed
     counters are deterministic across [jobs] settings *)
  let count_tier (e : entry) =
    match e.tier with
    | Some tr ->
        t.routed.(tier_slot tr) <- t.routed.(tier_slot tr) + 1;
        (match budget with Some b -> Budget.note_route b tr | None -> ())
    | None -> ()
  in
  let rec scan entries completed = function
    | [] -> Ok (List.rev entries, completed, None)
    | (_, _, `Hit e) :: rest ->
        count_tier e;
        scan (e :: entries) (completed + 1) rest
    | (key, _, `Solved e) :: rest ->
        cache_add t key e;
        count_tier e;
        (* the program paths note kept components inside Core.Engine *)
        (match (budget, strategy t plan, e.tier) with
        | Some b, Senum, _ -> Budget.note_component b
        | Some b, Sroute, Some (Budget.Direct | Budget.Enumerated) ->
            Budget.note_component b
        | _ -> ());
        scan (e :: entries) (completed + 1) rest
    | (_, _, `Err m) :: _ -> Error m
    | (_, _, (`Trip ex)) :: _ as remaining ->
        let degraded =
          List.map
            (fun (key, c, r) ->
              (match r with `Solved e -> cache_add t key e | _ -> ());
              filler c)
            remaining
        in
        Ok (List.rev_append entries degraded, completed, Some ex)
    | (_, _, `Unsolved) :: _ ->
        (* only reachable after a trip, which the [`Trip] arm consumed *)
        assert false
  in
  scan [] 0 results

(* ------------------------------------------------------------------ *)
(* Requests *)

let monolithic_repairs ?budget t =
  let key = mono_key t in
  match cache_find t key with
  | Some e -> Ok e.minimal
  | None ->
      Result.map
        (fun reps ->
          cache_add t key { minimal = reps; states = None; tier = None };
          reps)
        (Core.Engine.repairs ?budget ?max_decisions:t.max_effort t.d t.ics)

(* [Auto] on an inexact plan solved by enumeration: record the downgrade
   instead of degrading invisibly. *)
let note_auto_downgrade ?budget t (plan : Decompose.plan) =
  match (budget, t.engine, plan.Decompose.product_exact) with
  | Some b, Auto, false ->
      Budget.note_degraded b ~stage:"session"
        "inexact component product (cross-component null covering): auto \
         engine solved components by enumeration"
  | _ -> ()

let repairs ?budget t =
  t.requests <- t.requests + 1;
  with_plan ?budget t (fun plan ->
      match plan.Decompose.components with
      | [] -> Ok [ t.d ]
      | _ when (not plan.Decompose.product_exact) && strategy t plan = Sprog
        ->
          monolithic_repairs ?budget t
      | _ ->
          note_auto_downgrade ?budget t plan;
          Result.bind (solve_all ?budget t plan)
            (fun (entries, _completed, exhausted) ->
              match exhausted with
              | Some e ->
                  (* like the cold engines, the full repair set cannot
                     degrade gracefully *)
                  Error (Budget.message e)
              | None ->
                  let minimal = List.map (fun e -> e.minimal) entries in
                  if plan.Decompose.product_exact then
                    Ok
                      (List.of_seq
                         (Decompose.product plan.Decompose.core minimal))
                  else
                    (* Enumerate with a possible cross-component covering:
                       recombine the states and filter globally *)
                    let states =
                      List.map (fun e -> Option.get e.states) entries
                    in
                    Ok
                      (Repair.Order.minimal_among ~d:t.d
                         (List.of_seq
                            (Decompose.product plan.Decompose.core states)))))

let cqa ?budget ?semantics t q =
  t.requests <- t.requests + 1;
  let standard = Query.Qeval.answers ?semantics t.d q in
  with_plan ?budget t (fun plan ->
      match plan.Decompose.components with
      | [] ->
          Ok
            {
              Query.Cqa.consistent = standard;
              possible = standard;
              standard;
              repair_count = 1;
              exhausted = None;
            }
      | _ when (not plan.Decompose.product_exact) && strategy t plan = Sprog
        ->
          Result.map
            (Query.Cqa.outcome_of_repairs ?semantics ~standard q)
            (monolithic_repairs ?budget t)
      | _ ->
          note_auto_downgrade ?budget t plan;
          Result.bind (solve_all ?budget t plan)
            (fun (entries, completed, exhausted) ->
              match exhausted with
              | Some e when completed = 0 -> Error (Budget.message e)
              | _ ->
                  let minimal = List.map (fun e -> e.minimal) entries in
                  let states =
                    match strategy t plan with
                    | Senum ->
                        Some (List.map (fun e -> Option.get e.states) entries)
                    | Sprog | Sroute -> None
                  in
                  Ok
                    (Query.Cqa.factorized_outcome ?semantics ~jobs:t.jobs
                       ?states ?exhausted ~plan ~minimal ~standard q)))

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let stats t =
  {
    deltas = t.deltas;
    requests = t.requests;
    plan_reuses = t.plan_reuses;
    plan_rebuilds = t.plan_rebuilds;
    ics_reused = t.ics_reused;
    ics_fast = t.ics_fast;
    ics_rescanned = t.ics_rescanned;
    cache_hits = t.s_hits;
    cache_misses = t.s_misses;
    cache_evictions = (Cache.stats t.cache).Cache.evictions;
    cache_entries = (Cache.stats t.cache).Cache.entries;
    routed = Array.copy t.routed;
  }

let hit_rate (s : stats) =
  let probes = s.cache_hits + s.cache_misses in
  if probes = 0 then 0. else float_of_int s.cache_hits /. float_of_int probes

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<h>session: deltas=%d requests=%d plan.reused=%d plan.rebuilt=%d \
     ics.reused=%d ics.fast=%d ics.rescanned=%d cache.hits=%d \
     cache.misses=%d cache.evictions=%d cache.entries=%d%t@]"
    s.deltas s.requests s.plan_reuses s.plan_rebuilds s.ics_reused s.ics_fast
    s.ics_rescanned s.cache_hits s.cache_misses s.cache_evictions
    s.cache_entries
    (fun ppf ->
      (* the routed segment appears only for the auto engine, so the
         historical stats line is unchanged elsewhere *)
      if Array.exists (fun n -> n > 0) s.routed then
        Fmt.pf ppf
          " routed.direct=%d routed.shifted=%d routed.disjunctive=%d \
           routed.enumerate=%d"
          s.routed.(0) s.routed.(1) s.routed.(2) s.routed.(3))
