(** A bounded least-recently-used cache with hit/miss/evict telemetry.

    The session engine ({!Session}) keys per-component repair solves by
    content fingerprint; this cache bounds how many solved components stay
    resident.  [find] promotes, [add] inserts at the front and evicts from
    the back once [capacity] is exceeded.  Every probe is counted, so the
    serving loop can surface hit rates without instrumenting call sites.

    Thread-safe: every operation (including the counter reads) takes an
    internal mutex, so the cache can be shared process-globally across
    server connection threads and worker domains.  Counters stay coherent
    under concurrency — [hits + misses] always equals the number of
    completed probes.  Note that [find]-then-[add] is still two separate
    critical sections: two sessions can both miss the same key and both
    solve it; the second [add] harmlessly overwrites the first with an
    equal value (component solves are deterministic). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity <= 0] disables storage: every [find] misses and [add] is a
    no-op — useful to measure the cache's benefit by switching it off. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** [Some] promotes the entry to most-recently-used and counts a hit;
    [None] counts a miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or overwrite, promoting) as most-recently-used; evicts the
    least-recently-used entry when the cache would exceed its capacity. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership probe without promotion and without touching the counters
    (for tests). *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit
(** Drop every entry; the counters survive (they describe the session, not
    the current residency). *)
