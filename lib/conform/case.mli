(** One conformance case: a surface scenario, a query, the semantics to
    answer it under, and the pinned expectations.

    A case is self-contained — its [source] is a complete [.cqa] file
    (facts, constraints, queries, optionally an update stream), and the
    runner loads it through {!Lang.Load.of_string} exactly as the CLI
    would, so every case also exercises the parser and loader. *)

type expect = {
  consistent_db : bool option;
      (** is the final instance consistent under |=_N? *)
  repairs : int option;  (** pinned [repair_count] (the class [Rep(D, IC)]) *)
  repd : int option;
      (** pinned cardinality of the deletion-preferring class
          [Rep_d(D, IC)] ({!Repair.Repd.repairs_d}) — what the
          NNC/RIC-conflict family pins, since there the two classes
          genuinely differ (Example 20) *)
  certain : string option;
      (** pinned rendering of the consistent-answer set, in the exact
          syntax of {!render_set} *)
  possible : string option;
}

val no_expect : expect
(** Cross-tier identity only — what generated corpus cases that pin no
    closed-form answer set use. *)

type t = {
  name : string;
  family : string;
  doc : string;
  source : string;  (** complete surface file *)
  query : string;   (** name of the query (declared in [source]) to answer *)
  semantics : Query.Qeval.semantics;
  expect : expect;
  equiv : string option;
      (** a second query declared in [source] whose outcome must render
          byte-identically to [query]'s — the Franconi–Tessaris-style
          null-algebra equivalences are pinned this way *)
}

val make :
  ?semantics:Query.Qeval.semantics ->
  ?expect:expect ->
  ?equiv:string ->
  family:string ->
  doc:string ->
  query:string ->
  string ->
  string ->
  t
(** [make ~family ~doc ~query name source]; [semantics] defaults to
    [NullAsConstant] (the paper's). *)

val render_set : Relational.Tuple.Set.t -> string
(** The answer-set syntax of {!Query.Cqa.pp_outcome} ("{(a, b), ...}"). *)

val render_outcome : Query.Cqa.outcome -> string
(** The full four-line outcome rendering the tiers are compared on. *)

val set_of_rows : Relational.Value.t list list -> Relational.Tuple.Set.t

val pin_rows : Relational.Value.t list list -> string
(** [render_set] of [set_of_rows] — how generators pin expected answers
    without hand-ordering the set. *)
