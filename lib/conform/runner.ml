module Instance = Relational.Instance

(* The engine tiers every case is answered through.  Each tier reaches the
   same outcome by a genuinely different code path:

   - [Auto] is the routed decomposed engine (direct / shifted /
     disjunctive / enumerate per conflict component);
   - [Program] and [Enumerate] are the monolithic materializing engines
     (stable models of Pi(D, IC) under CDCL, and the model-theoretic
     state search);
   - [ProgramDpll] re-runs the program engine under the chronological
     DPLL search and folds the repairs through
     {!Query.Cqa.outcome_of_repairs} — the CDCL/DPLL differential at the
     outcome level (with the CLI's enumeration fallback where the repair
     program is not applicable);
   - [SessionTier] replays the scenario's update stream through the
     incremental session engine;
   - [ServeTier] replays it through the serving line protocol
     ({!Serve.Protocol}), request text and all.

   All six must render byte-identical outcomes. *)
type tier = Auto | Program | Enumerate | ProgramDpll | SessionTier | ServeTier

let all_tiers = [ Auto; Program; Enumerate; ProgramDpll; SessionTier; ServeTier ]

let tier_name = function
  | Auto -> "auto"
  | Program -> "program"
  | Enumerate -> "enumerate"
  | ProgramDpll -> "program-dpll"
  | SessionTier -> "session"
  | ServeTier -> "serve"

(* The protocol's cqa command answers under the default query semantics,
   so the serve tier only applies to NullAsConstant cases.  The program
   tiers implement the null-padded repair program of Definition 9, sound
   only for non-conflicting constraint sets (the Assumption of Section 4);
   on conflicting sets (Example 20) [Rep(D, IC)] additionally contains
   arbitrary-constant insertion repairs the program cannot produce, so
   those tiers are skipped and the case pins [Rep_d] instead. *)
let tiers_for ~ics (c : Case.t) =
  let conflicting = Result.is_error (Ic.Builder.non_conflicting ics) in
  List.filter
    (fun t ->
      (match t with
      | ServeTier -> c.Case.semantics = Query.Qeval.NullAsConstant
      | Program | ProgramDpll -> not conflicting
      | Auto | Enumerate | SessionTier -> true))
    all_tiers

let method_outcome ~method_ ~semantics d ics q =
  Result.map Case.render_outcome
    (Query.Cqa.consistent_answers ~method_ ~semantics d ics q)

let dpll_outcome ~semantics d ics q =
  let repairs =
    match Core.Engine.repairs ~search:`Dpll d ics with
    | Ok reps -> reps
    | Error _ -> Repair.Enumerate.repairs d ics
  in
  Ok
    (Case.render_outcome
       (Query.Cqa.outcome_of_repairs ~semantics
          ~standard:(Query.Qeval.answers ~semantics d q)
          q repairs))

let session_outcome ~semantics (l : Lang.Load.loaded) q =
  let s = Session.create ~engine:Session.Auto l.Lang.Load.instance l.Lang.Load.ics in
  if l.Lang.Load.updates <> [] then Session.apply s l.Lang.Load.updates;
  Result.map Case.render_outcome (Session.cqa ~semantics s q)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let serve_outcome (l : Lang.Load.loaded) name =
  let p = Serve.Protocol.create (Serve.Protocol.repl_config ~engine:Session.Auto ()) in
  ignore
    (Serve.Protocol.attach p ~base:l.Lang.Load.instance ~ics:l.Lang.Load.ics
       (Serve.Protocol.env_of_loaded l));
  (* replay the update stream request by request, as a client would *)
  let replay op =
    let verb, a =
      match op with
      | Delta.Insert a -> ("insert", a)
      | Delta.Delete a -> ("delete", a)
    in
    let r = Serve.Protocol.exec p (verb ^ " " ^ Lang.Emit.fact a) in
    if starts_with ~prefix:"error" r.Serve.Protocol.text then
      Error (String.trim r.Serve.Protocol.text)
    else Ok ()
  in
  let rec apply = function
    | [] -> Ok ()
    | op :: rest -> ( match replay op with Ok () -> apply rest | e -> e)
  in
  match apply l.Lang.Load.updates with
  | Error _ as e -> e
  | Ok () ->
      let r = Serve.Protocol.exec p ("cqa " ^ name) in
      let text = r.Serve.Protocol.text in
      (* the reply is a "query NAME: <query>" header followed by the
         outcome rendering and a final newline.  Long query renderings
         wrap the header across several lines (the protocol formats at
         the default margin), so rather than stripping one line, take the
         body from the first line the outcome rendering can start with —
         "consistent: " on success, "  error" otherwise.  The outcome
         lines themselves never wrap (the set printer emits no break
         hints). *)
      let body_from marker =
        if starts_with ~prefix:marker text then Some text
        else
          let rec find i =
            match String.index_from_opt text i '\n' with
            | None -> None
            | Some j ->
                let rest =
                  String.sub text (j + 1) (String.length text - j - 1)
                in
                if starts_with ~prefix:marker rest then Some rest
                else find (j + 1)
          in
          find 0
      in
      if not (starts_with ~prefix:"query " text) then
        Error (Fmt.str "unexpected protocol reply: %s" (String.trim text))
      else (
        match (body_from "consistent: ", body_from "  error") with
        | Some body, _ ->
            let body =
              if String.length body > 0 && body.[String.length body - 1] = '\n'
              then String.sub body 0 (String.length body - 1)
              else body
            in
            Ok body
        | None, Some err -> Error (String.trim err)
        | None, None ->
            Error (Fmt.str "unexpected protocol reply: %s" (String.trim text)))

let run_tier (c : Case.t) (l : Lang.Load.loaded) q tier =
  let semantics = c.Case.semantics in
  let d = Lang.Load.final_instance l in
  match tier with
  | Auto -> method_outcome ~method_:Query.Cqa.Auto ~semantics d l.Lang.Load.ics q
  | Program -> (
      (* where the repair program is not applicable (built-in offsets,
         non-form-(3) existentials) fall back to the model-theoretic
         method, as the CLI's repairs command does *)
      match
        method_outcome ~method_:Query.Cqa.LogicProgram ~semantics d
          l.Lang.Load.ics q
      with
      | Error _ ->
          method_outcome ~method_:Query.Cqa.ModelTheoretic ~semantics d
            l.Lang.Load.ics q
      | ok -> ok)
  | Enumerate ->
      method_outcome ~method_:Query.Cqa.ModelTheoretic ~semantics d l.Lang.Load.ics q
  | ProgramDpll -> dpll_outcome ~semantics d l.Lang.Load.ics q
  | SessionTier -> session_outcome ~semantics l q
  | ServeTier -> serve_outcome l c.Case.query

type tier_result = {
  tier : string;
  rendered : (string, string) result;
  ms : float;  (** wall-clock of this tier's answer, for bench telemetry *)
}

type result_ = {
  case : Case.t;
  tiers : tier_result list;
  failures : string list;
}

let passed r = r.failures = []

let expect_failures (c : Case.t) (l : Lang.Load.loaded)
    (outcome : Query.Cqa.outcome) =
  let e = c.Case.expect in
  let check label expected actual =
    if expected = actual then []
    else [ Fmt.str "%s: expected %s, got %s" label expected actual ]
  in
  let consistency =
    match e.Case.consistent_db with
    | None -> []
    | Some want ->
        let got =
          Semantics.Nullsat.consistent (Lang.Load.final_instance l)
            l.Lang.Load.ics
        in
        if want = got then []
        else
          [
            Fmt.str "consistency: expected %s, database is %s"
              (if want then "consistent" else "inconsistent")
              (if got then "consistent" else "inconsistent");
          ]
  in
  consistency
  @ (match e.Case.repairs with
    | None -> []
    | Some n ->
        check "repairs" (string_of_int n)
          (string_of_int outcome.Query.Cqa.repair_count))
  @ (match e.Case.repd with
    | None -> []
    | Some n ->
        let got =
          List.length
            (Repair.Repd.repairs_d (Lang.Load.final_instance l)
               l.Lang.Load.ics)
        in
        check "repd" (string_of_int n) (string_of_int got))
  @ (match e.Case.certain with
    | None -> []
    | Some s ->
        check "certain" s (Case.render_set outcome.Query.Cqa.consistent))
  @
  match e.Case.possible with
  | None -> []
  | Some s -> check "possible" s (Case.render_set outcome.Query.Cqa.possible)

let run_case (c : Case.t) =
  match Lang.Load.of_string ~file:(c.Case.name ^ ".cqa") c.Case.source with
  | Error msg ->
      { case = c; tiers = []; failures = [ Fmt.str "load: %s" msg ] }
  | Ok l -> (
      match List.assoc_opt c.Case.query l.Lang.Load.queries with
      | None ->
          {
            case = c;
            tiers = [];
            failures =
              [ Fmt.str "source declares no query named %s" c.Case.query ];
          }
      | Some q -> (
          let d = Lang.Load.final_instance l in
          let semantics = c.Case.semantics in
          match
            Query.Cqa.consistent_answers ~method_:Query.Cqa.Auto ~semantics d
              l.Lang.Load.ics q
          with
          | Error msg ->
              {
                case = c;
                tiers = [];
                failures = [ Fmt.str "auto: %s" msg ];
              }
          | Ok outcome ->
              let reference = Case.render_outcome outcome in
              let tiers =
                List.map
                  (fun t ->
                    let t0 = Unix.gettimeofday () in
                    let rendered = run_tier c l q t in
                    {
                      tier = tier_name t;
                      rendered;
                      ms = (Unix.gettimeofday () -. t0) *. 1000.;
                    })
                  (tiers_for ~ics:l.Lang.Load.ics c)
              in
              let tier_failures =
                List.concat_map
                  (fun tr ->
                    match tr.rendered with
                    | Error msg -> [ Fmt.str "%s: error: %s" tr.tier msg ]
                    | Ok r when r <> reference ->
                        [
                          Fmt.str "%s: outcome differs from auto:@,%s@,vs@,%s"
                            tr.tier r reference;
                        ]
                    | Ok _ -> [])
                  tiers
              in
              let equiv_failures =
                match c.Case.equiv with
                | None -> []
                | Some name2 -> (
                    match List.assoc_opt name2 l.Lang.Load.queries with
                    | None ->
                        [ Fmt.str "source declares no query named %s" name2 ]
                    | Some q2 -> (
                        match
                          Query.Cqa.consistent_answers ~method_:Query.Cqa.Auto
                            ~semantics d l.Lang.Load.ics q2
                        with
                        | Error msg -> [ Fmt.str "equiv %s: %s" name2 msg ]
                        | Ok o2 ->
                            let r2 = Case.render_outcome o2 in
                            if r2 = reference then []
                            else
                              [
                                Fmt.str
                                  "equiv %s: outcome differs from %s:@,%s@,vs@,%s"
                                  name2 c.Case.query r2 reference;
                              ]))
              in
              {
                case = c;
                tiers;
                failures =
                  tier_failures @ equiv_failures
                  @ expect_failures c l outcome;
              }))

type summary = {
  total : int;
  ok : int;
  families : string list;
  failed : result_ list;
}

let run cases =
  let results = List.map run_case cases in
  let families =
    List.fold_left
      (fun acc r ->
        if List.mem r.case.Case.family acc then acc
        else acc @ [ r.case.Case.family ])
      [] results
  in
  let failed = List.filter (fun r -> not (passed r)) results in
  ( { total = List.length results;
      ok = List.length results - List.length failed;
      families;
      failed },
    results )
