(** The expected-verdict runner: answer every case through every engine
    tier and cross-check the rendered outcomes byte for byte, then check
    the case's pinned expectations against the reference (auto) outcome. *)

type tier = Auto | Program | Enumerate | ProgramDpll | SessionTier | ServeTier

val all_tiers : tier list
val tier_name : tier -> string

val tiers_for : ics:Ic.Constr.t list -> Case.t -> tier list
(** All six tiers, except that (a) the serve tier is skipped for cases
    pinned to a non-default query semantics (the line protocol answers
    under the default), and (b) the program tiers are skipped when [ics]
    fails {!Ic.Builder.non_conflicting} — the null-padded repair program
    of Definition 9 is sound only under the Assumption of Section 4, and
    on conflicting sets (Example 20) it legitimately disagrees with
    [Rep(D, IC)].  Such cases pin the {!Repair.Repd} cardinality
    instead. *)

type tier_result = {
  tier : string;
  rendered : (string, string) result;
  ms : float;  (** wall-clock of this tier's answer, for bench telemetry *)
}

type result_ = {
  case : Case.t;
  tiers : tier_result list;
  failures : string list;  (** empty iff the case passed *)
}

val passed : result_ -> bool

val run_case : Case.t -> result_

type summary = {
  total : int;
  ok : int;
  families : string list;  (** in first-seen order *)
  failed : result_ list;
}

val run : Case.t list -> summary * result_ list
