module Value = Relational.Value
module Instance = Relational.Instance

(* The fuzzer's scenario space grows {!Workload.Gen.random_case}'s shape:
   the same small schema, constant pool and constraint menu, plus a
   random insert/delete update stream and a query from a fixed menu.  A
   scenario is pure data (menu indices, value lists), which is what makes
   the delta-debugging shrinker a set of list edits. *)

type scenario = {
  facts : (string * Value.t list) list;
  ics : int list;  (** indices into {!menu}, sorted, deduplicated *)
  updates : (bool * string * Value.t list) list;  (** [true] = insert *)
  query : int;  (** index into {!queries} *)
}

let v = Ic.Term.var
let atom p ts = Ic.Patom.make p ts

let menu =
  [|
    ("p_q", fun () ->
      Ic.Constr.generic ~name:"p_q" ~ante:[ atom "P" [ v "x" ] ]
        ~cons:[ atom "Q" [ v "x" ] ] ());
    ("p_r", fun () ->
      Ic.Constr.generic ~name:"p_r" ~ante:[ atom "P" [ v "x" ] ]
        ~cons:[ atom "R" [ v "x"; v "y" ] ] ());
    ("r_s", fun () ->
      Ic.Constr.generic ~name:"r_s" ~ante:[ atom "R" [ v "x"; v "y" ] ]
        ~cons:[ atom "S" [ v "x" ] ] ());
    ("fd_r", fun () ->
      Ic.Builder.functional_dependency ~name:"fd_r" ~pred:"R" ~arity:2
        ~lhs:[ 1 ] ~rhs:2 ());
    ("nn_r2", fun () -> Ic.Constr.not_null ~name:"nn_r2" ~pred:"R" ~arity:2 ~pos:2 ());
    ("nn_p1", fun () -> Ic.Constr.not_null ~name:"nn_p1" ~pred:"P" ~arity:1 ~pos:1 ());
    ("no_ps", fun () ->
      Ic.Builder.denial ~name:"no_ps" [ atom "P" [ v "x" ]; atom "S" [ v "x" ] ]);
    ("q_p", fun () ->
      Ic.Constr.generic ~name:"q_p" ~ante:[ atom "Q" [ v "x" ] ]
        ~cons:[ atom "P" [ v "x" ] ] ());
  |]

let qatom p vars = Query.Qsyntax.Atom (atom p (List.map v vars))

let queries =
  [|
    ("p_rows", Query.Qsyntax.make ~name:"p_rows" ~head:[ "x" ] (qatom "P" [ "x" ]));
    ("r_rows",
     Query.Qsyntax.make ~name:"r_rows" ~head:[ "x"; "y" ] (qatom "R" [ "x"; "y" ]));
    ("pq",
     Query.Qsyntax.make ~name:"pq" ~head:[ "x" ]
       (Query.Qsyntax.And (qatom "P" [ "x" ], qatom "Q" [ "x" ])));
    ("r_null",
     Query.Qsyntax.make ~name:"r_null" ~head:[ "x" ]
       (Query.Qsyntax.Exists
          ( [ "y" ],
            Query.Qsyntax.And
              (qatom "R" [ "x"; "y" ], Query.Qsyntax.IsNull (v "y")) )));
    ("ps",
     Query.Qsyntax.make ~name:"ps" ~head:[]
       (Query.Qsyntax.Exists
          ( [ "x" ],
            Query.Qsyntax.And (qatom "P" [ "x" ], qatom "S" [ "x" ]) )));
  |]

let rels = [| ("P", 1); ("Q", 1); ("R", 2); ("S", 1) |]

let schema =
  let attrs n = List.init n (fun i -> Printf.sprintf "c%d" (i + 1)) in
  Array.fold_left
    (fun s (name, arity) ->
      Relational.Schema.add_relation s ~name ~attrs:(attrs arity))
    Relational.Schema.empty rels

(* ------------------------------------------------------------------ *)
(* Rendering: the scenario as a complete surface file — [Emit.file] for
   the schema/facts/constraints/query, plus the update statements (the
   emitter has no update syntax of its own). *)

let source sc =
  let d = Instance.of_list sc.facts in
  let ics = List.map (fun i -> snd menu.(i) ()) sc.ics in
  let qname, q = queries.(sc.query) in
  Lang.Emit.file ~schema ~ics ~queries:[ (qname, q) ] d
  ^ String.concat ""
      (List.map
         (fun (ins, p, args) ->
           Printf.sprintf "%s %s\n"
             (if ins then "insert" else "delete")
             (Lang.Emit.fact (Relational.Atom.make p args)))
         sc.updates)

let case_of ?(name = "fuzz") sc =
  Case.make ~family:"fuzz" ~doc:"generated scenario"
    ~query:(fst queries.(sc.query))
    name (source sc)

(* ------------------------------------------------------------------ *)
(* Generation *)

let gen ?(seed = 42) () =
  let rng = Random.State.make [| seed; 0xfa22 |] in
  let pool = [| Value.str "a"; Value.str "b"; Value.str "c"; Value.null |] in
  let pick () = pool.(Random.State.int rng (Array.length pool)) in
  let tuples (p, arity) =
    List.init
      (Random.State.int rng 4)
      (fun _ -> (p, List.init arity (fun _ -> pick ())))
  in
  let facts =
    List.sort_uniq compare (List.concat_map tuples (Array.to_list rels))
  in
  let n_ics = 1 + Random.State.int rng 3 in
  let ics =
    List.sort_uniq compare
      (List.init n_ics (fun _ -> Random.State.int rng (Array.length menu)))
  in
  let updates =
    List.init
      (Random.State.int rng 4)
      (fun _ ->
        let p, arity = rels.(Random.State.int rng (Array.length rels)) in
        ( Random.State.bool rng,
          p,
          List.init arity (fun _ -> pick ()) ))
  in
  let query = Random.State.int rng (Array.length queries) in
  { facts; ics; updates; query }

(* ------------------------------------------------------------------ *)
(* Size and shrinking.  The size measure (facts + constraints + updates +
   distinct non-null constants) strictly decreases on every accepted
   shrink step, so the greedy loop terminates. *)

let constants sc =
  let add acc vs =
    List.fold_left
      (fun acc v -> if Value.is_null v || List.mem v acc then acc else v :: acc)
      acc vs
  in
  let acc = List.fold_left (fun acc (_, vs) -> add acc vs) [] sc.facts in
  List.fold_left (fun acc (_, _, vs) -> add acc vs) acc sc.updates

let size sc =
  List.length sc.facts + List.length sc.ics + List.length sc.updates
  + List.length (constants sc)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let candidates sc =
  let drop_facts =
    List.mapi (fun i _ -> { sc with facts = drop_nth sc.facts i }) sc.facts
  in
  let drop_ics =
    List.mapi (fun i _ -> { sc with ics = drop_nth sc.ics i }) sc.ics
  in
  let drop_updates =
    List.mapi
      (fun i _ -> { sc with updates = drop_nth sc.updates i })
      sc.updates
  in
  (* domain narrowing: merge a constant into "a" everywhere (facts merged
     by the merge are deduplicated, so the emitted instance shrinks too) *)
  let a = Value.str "a" in
  let merge_const c =
    let sub v = if Value.equal v c then a else v in
    {
      sc with
      facts =
        List.sort_uniq compare
          (List.map (fun (p, vs) -> (p, List.map sub vs)) sc.facts);
      updates = List.map (fun (i, p, vs) -> (i, p, List.map sub vs)) sc.updates;
    }
  in
  let merges =
    List.filter_map
      (fun c -> if Value.equal c a then None else Some (merge_const c))
      (constants sc)
  in
  drop_facts @ drop_ics @ drop_updates @ merges

(* ------------------------------------------------------------------ *)
(* Oracles *)

type oracle = { name : string; fails : scenario -> string option }

let differential =
  {
    name = "differential";
    fails =
      (fun sc ->
        let r = Runner.run_case (case_of sc) in
        if Runner.passed r then None
        else Some (String.concat "; " r.Runner.failures));
  }

(* The demo oracle for exercising the minimizer end to end: "fails" iff
   the final instance is inconsistent, so the minimal repro is the
   smallest violation core of the scenario. *)
let inconsistent =
  {
    name = "inconsistent";
    fails =
      (fun sc ->
        match Lang.Load.of_string (source sc) with
        | Error msg -> Some (Printf.sprintf "load: %s" msg)
        | Ok l -> (
            match
              Semantics.Nullsat.check (Lang.Load.final_instance l)
                l.Lang.Load.ics
            with
            | [] -> None
            | violations ->
                Some
                  (Printf.sprintf "final instance is inconsistent (%d violation(s))"
                     (List.length violations))));
  }

let oracles = [ differential; inconsistent ]

let oracle_named name =
  List.find_opt (fun o -> o.name = name) oracles

(* ------------------------------------------------------------------ *)
(* Delta-debugging minimization: greedily accept the first candidate edit
   that is strictly smaller and still fails the oracle; repeat to a fixed
   point.  The result is 1-minimal with respect to the edit set. *)

let minimize_trace oracle sc =
  let rec go sc trail =
    let sz = size sc in
    match
      List.find_opt
        (fun c -> size c < sz && oracle.fails c <> None)
        (candidates sc)
    with
    | Some c -> go c (c :: trail)
    | None -> (sc, List.rev trail)
  in
  go sc []

let minimize oracle sc =
  let min_sc, trail = minimize_trace oracle sc in
  (min_sc, List.length trail)

(* ------------------------------------------------------------------ *)

type run = {
  tested : int;
  failure : (int * string * scenario) option;
      (** seed, oracle message, failing scenario *)
  timed_out : bool;
}

let run ?(oracle = differential) ?budget ~seed ~cases () =
  let deadline_ok () =
    match budget with
    | None -> true
    | Some b -> (
        try
          Budget.check_deadline b;
          true
        with Budget.Exhausted _ -> false)
  in
  let rec go i =
    if i >= cases then { tested = cases; failure = None; timed_out = false }
    else if not (deadline_ok ()) then
      { tested = i; failure = None; timed_out = true }
    else
      let sc = gen ~seed:(seed + i) () in
      match oracle.fails sc with
      | None -> go (i + 1)
      | Some msg ->
          { tested = i + 1; failure = Some (seed + i, msg, sc); timed_out = false }
  in
  go 0
