(** Generated scenario families: parameterized generators that emit both
    the surface scenario and its closed-form expectations (repair counts
    from the independent-choice structure, certain/possible sets from
    which tuples survive every/some repair) — the engines are checked
    against combinatorics derived without running any engine. *)

val fk_chain :
  name:string ->
  parents:int ->
  children:int ->
  orphan_children:int ->
  orphan_grandchildren:int ->
  unit ->
  Case.t
(** Binary FK chain P <- C <- G; [2^(oc+og)] repairs (delete the orphan
    or insert the null-padded, |=_N-vacuous parent). *)

val fd_cluster :
  name:string -> rows:int -> conflicts:int -> width:int -> unit -> Case.t
(** [conflicts] clusters of [width] FD-conflicting rows:
    [width^conflicts] repairs, each keeping one row per cluster. *)

val cyclic_ric : name:string -> complete:int -> dangling:int -> unit -> Case.t
(** RIC cycle A -> B -> C -> A; each dangling A is a two-way choice
    (delete, or insert the B/C cascade around the cycle). *)

val nnc_ric :
  name:string -> staff:int -> unassigned:int -> unaudited:int -> unit -> Case.t
(** The Example 20 conflict shape: the NNC on the RIC's existential
    attribute makes the constraint set conflicting, so [Rep(D, IC)]
    recovers the arbitrary-constant insertion repairs
    ([(|dom| + 1)^unassigned * 2^unaudited] of them) while the
    deletion-preferring [Rep_d(D, IC)] keeps only [2^unaudited].  Both
    cardinalities are pinned; the program tiers (sound only for
    non-conflicting sets) are skipped by the runner. *)

val session_stream :
  name:string ->
  base:int ->
  added:int ->
  dangling:int ->
  revoked:int ->
  unit ->
  Case.t
(** A consistent base plus an insert/delete statement stream; the session
    and serve tiers replay the stream through the incremental engine. *)

val families : (string * Case.t list) list
(** The committed corpus: five families, three parameterizations each. *)

val all : Case.t list

val write_corpus : string -> string list
(** Materialize the corpus under [dir/<family>/<name>.cqa]; returns the
    written paths (in family order). *)
