(** The pinned conformance cases. *)

val paper : Case.t list
(** Examples 4-13 of the paper as executable cases (family ["paper"]):
    satisfied and violated variants, with the update-stream examples
    carried as insert/delete statements so the session and serve tiers
    replay them through the engine. *)

val ft : Case.t list
(** SQL-null algebra equivalences under the [SqlLike] query semantics
    (family ["ft-null-algebra"]), in the spirit of Franconi & Tessaris'
    formalization of SQL nulls: each case pins two equivalent query forms
    to byte-identical outcomes. *)

val all : Case.t list
