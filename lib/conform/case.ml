module Tuple = Relational.Tuple

type expect = {
  consistent_db : bool option;
  repairs : int option;
  repd : int option;
  certain : string option;
  possible : string option;
}

let no_expect =
  {
    consistent_db = None;
    repairs = None;
    repd = None;
    certain = None;
    possible = None;
  }

type t = {
  name : string;
  family : string;
  doc : string;
  source : string;
  query : string;
  semantics : Query.Qeval.semantics;
  expect : expect;
  equiv : string option;
}

let make ?(semantics = Query.Qeval.NullAsConstant) ?(expect = no_expect)
    ?equiv ~family ~doc ~query name source =
  { name; family; doc; source; query; semantics; expect; equiv }

(* The two renderings every cross-check compares on.  [render_set] is
   exactly the set syntax of {!Query.Cqa.pp_outcome} (elements in
   [Tuple.Set] order), so a generator can pin certain/possible answers by
   building the set and rendering it here. *)

let render_set s =
  Fmt.str "{%a}" Fmt.(list ~sep:(any ", ") Tuple.pp) (Tuple.Set.elements s)

let render_outcome o = Fmt.str "%a" Query.Cqa.pp_outcome o

let set_of_rows rows =
  Tuple.Set.of_list (List.map Tuple.make rows)

let pin_rows rows = render_set (set_of_rows rows)
