(** The minimizing scenario fuzzer: random scenarios over
    {!Workload.Gen.random_case}'s shape grown with an update stream and a
    query, an oracle abstraction, and a delta-debugging shrinker to a
    minimal failing surface repro. *)

type scenario = {
  facts : (string * Relational.Value.t list) list;
  ics : int list;
  updates : (bool * string * Relational.Value.t list) list;
  query : int;
}

val gen : ?seed:int -> unit -> scenario
(** Deterministic in [seed]. *)

val source : scenario -> string
(** The scenario as a complete surface file (schema, facts, constraints,
    query, update statements) — always parses and loads. *)

val case_of : ?name:string -> scenario -> Case.t
(** Wrap as a conformance case (family ["fuzz"], no pinned expects) for
    the cross-tier runner. *)

val size : scenario -> int
(** Facts + constraints + updates + distinct non-null constants — the
    strictly-decreasing measure of the shrinker. *)

val candidates : scenario -> scenario list
(** One-edit shrink candidates: drop a fact / a constraint / an update,
    or merge a constant into ["a"] (domain narrowing). *)

type oracle = { name : string; fails : scenario -> string option }
(** [fails sc] is [Some msg] iff the scenario exhibits the failure the
    oracle looks for. *)

val differential : oracle
(** Fails iff the engine tiers disagree (any cross-tier outcome
    difference or tier error, per {!Runner.run_case}). *)

val inconsistent : oracle
(** Demo oracle for exercising the minimizer: fails iff the final
    instance violates the constraints — its minimal repro is the
    scenario's smallest violation core. *)

val oracles : oracle list
val oracle_named : string -> oracle option

val minimize : oracle -> scenario -> scenario * int
(** Greedy delta debugging: repeatedly take the first strictly-smaller
    candidate that still fails, to a fixed point (1-minimal wrt the edit
    set).  Returns the minimum and the number of accepted steps. *)

val minimize_trace : oracle -> scenario -> scenario * scenario list
(** {!minimize} with the accepted intermediate scenarios (each parses,
    still fails, and is strictly smaller than its predecessor) — what the
    shrinker-soundness property test checks. *)

type run = {
  tested : int;
  failure : (int * string * scenario) option;
  timed_out : bool;
}

val run :
  ?oracle:oracle -> ?budget:Budget.ctl -> seed:int -> cases:int -> unit -> run
(** Test [cases] scenarios generated from consecutive seeds starting at
    [seed]; stops at the first failure, or cleanly between cases when
    [budget]'s wall-clock deadline passes ([timed_out] set). *)
