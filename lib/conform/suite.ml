(* The pinned conformance suite.

   [paper] encodes Examples 4-13 of Bravo & Bertossi (EDBT 2006) as
   executable cases: each source is the example's instance and constraint
   set in the surface syntax, the expectations (consistency verdict,
   repair count, certain/possible answer sets) are the ones derived in the
   paper's text.  Where the example discusses an update ("inserting t is
   rejected"), the case carries the update as an insert/delete statement
   so the session and serve tiers replay it through the engine.

   [ft] pins SQL-null algebra equivalences in the spirit of Franconi &
   Tessaris' formalization of SQL's three-valued semantics: each case
   declares two queries that are equivalent under the [SqlLike] semantics
   (comparisons with null are unknown, negation is two-valued) and pins
   them to render byte-identical outcomes, plus the q1 verdicts. *)

let vs = Relational.Value.str
let vi = Relational.Value.int
let vn = Relational.Value.null

let expect ?consistent_db ?repairs ?repd ?certain ?possible () =
  {
    Case.consistent_db;
    repairs;
    repd;
    certain = Option.map Case.pin_rows certain;
    possible = Option.map Case.pin_rows possible;
  }

(* ------------------------------------------------------------------ *)
(* Paper examples *)

let ex4_base =
  "relation P(x, y, z).\n\
   relation R(y, z).\n\
   P(a, b, null).\n"

let ex4_sat =
  Case.make ~family:"paper"
    ~doc:"Example 4: psi1's relevant attribute P[3] holds null, satisfied"
    ~query:"r_pairs"
    ~expect:(expect ~consistent_db:true ~repairs:1 ~certain:[] ~possible:[] ())
    "ex4_sat"
    (ex4_base
    ^ "constraint psi1: P(X, Y, Z) -> R(Y, Z).\n\
       query r_pairs(Y, Z): R(Y, Z).\n")

let ex4_viol =
  Case.make ~family:"paper"
    ~doc:"Example 4: psi2's relevant attributes are null-free, violated"
    ~query:"r_pairs"
    ~expect:
      (expect ~consistent_db:false ~repairs:2 ~certain:[]
         ~possible:[ [ vs "a"; vs "b" ] ] ())
    "ex4_viol"
    (ex4_base
    ^ "constraint psi2: P(X, Y, Z) -> R(X, Y).\n\
       query r_pairs(X, Y): R(X, Y).\n")

let ex5_base =
  "relation Course(c, i, t).\n\
   relation Exp(i, c, e).\n\
   Course(cs27, 21, w04).\n\
   Course(cs18, 34, null).\n\
   Course(cs50, null, w05).\n\
   Exp(21, cs27, 3).\n\
   Exp(34, cs18, null).\n\
   Exp(45, cs32, 2).\n\
   constraint ric: Course(C, I, T) -> Exp(I, C, E).\n\
   query courses(C): exists I T. Course(C, I, T).\n"

let ex5_courses = [ [ vs "cs18" ]; [ vs "cs27" ]; [ vs "cs50" ] ]

let ex5_sat =
  Case.make ~family:"paper"
    ~doc:"Example 5: FK under simple match; null-keyed course is vacuous"
    ~query:"courses"
    ~expect:
      (expect ~consistent_db:true ~repairs:1 ~certain:ex5_courses
         ~possible:ex5_courses ())
    "ex5_sat" ex5_base

let ex5_insert =
  Case.make ~family:"paper"
    ~doc:"Example 5: inserting Course(cs41, 18, null) is a violation"
    ~query:"courses"
    ~expect:
      (expect ~consistent_db:false ~repairs:2 ~certain:ex5_courses
         ~possible:(ex5_courses @ [ [ vs "cs41" ] ])
         ())
    "ex5_insert"
    (ex5_base ^ "insert Course(cs41, 18, null).\n")

let ex6_base =
  "relation Emp(i, n, s).\n\
   Emp(32, null, 1000).\n\
   Emp(41, paul, null).\n\
   constraint salary_pos: Emp(I, N, S) -> S > 100.\n\
   query emps(I): exists N S. Emp(I, N, S).\n"

let ex6_emps = [ [ vi 32 ]; [ vi 41 ] ]

let ex6_sat =
  Case.make ~family:"paper"
    ~doc:"Example 6: check constraint; null salary is unknown, accepted"
    ~query:"emps"
    ~expect:
      (expect ~consistent_db:true ~repairs:1 ~certain:ex6_emps
         ~possible:ex6_emps ())
    "ex6_sat" ex6_base

let ex6_viol =
  Case.make ~family:"paper"
    ~doc:"Example 6: salary 50 fails the check; checks repair by deletion only"
    ~query:"emps"
    ~expect:
      (expect ~consistent_db:false ~repairs:1 ~certain:ex6_emps
         ~possible:ex6_emps ())
    "ex6_viol"
    (ex6_base ^ "insert Emp(32, null, 50).\n")

let ex8_base =
  "relation Person(n, f, m, a).\n\
   Person(lee, rod, mary, 27).\n\
   Person(rod, joe, tess, 55).\n\
   Person(mary, adam, ann, null).\n\
   constraint older: Person(X, Y, Z, W), Person(Z, S, T, U) -> U > W + 15.\n\
   query people(X): exists Y Z W. Person(X, Y, Z, W).\n"

let ex8_sat =
  Case.make ~family:"paper"
    ~doc:"Example 8: multi-row check; the joined age is null, accepted"
    ~query:"people"
    ~expect:
      (expect ~consistent_db:true ~repairs:1
         ~certain:[ [ vs "lee" ]; [ vs "mary" ]; [ vs "rod" ] ]
         ~possible:[ [ vs "lee" ]; [ vs "mary" ]; [ vs "rod" ] ]
         ())
    "ex8_sat" ex8_base

let ex8_viol =
  Case.make ~family:"paper"
    ~doc:"Example 8: mother aged 30 violates the join check (30 < 27 + 15)"
    ~query:"people"
    ~expect:
      (expect ~consistent_db:false ~repairs:2 ~certain:[ [ vs "rod" ] ]
         ~possible:[ [ vs "lee" ]; [ vs "mary" ]; [ vs "rod" ] ]
         ())
    "ex8_viol"
    (ex8_base
    ^ "delete Person(mary, adam, ann, null).\n\
       insert Person(mary, adam, ann, 30).\n")

let ex9 =
  Case.make ~family:"paper"
    ~doc:
      "Example 9: Employee(w04, null) does not support Course's (w04, 34) \
       reference"
    ~query:"emp"
    ~expect:
      (expect ~consistent_db:false ~repairs:2
         ~certain:[ [ vs "w04"; vn ] ]
         ~possible:[ [ vs "w04"; vn ]; [ vs "w04"; vi 34 ] ]
         ())
    "ex9"
    "relation Course(c, t, i).\n\
     relation Employee(t, i).\n\
     Course(cs18, w04, 34).\n\
     Employee(w04, null).\n\
     constraint ric: Course(X, Y, Z) -> Employee(Y, Z).\n\
     query emp(X, Y): Employee(X, Y).\n"

let ex11_base =
  "relation P(x, y, z).\n\
   relation R(x, y).\n\
   relation T(x).\n\
   P(a, d, e).\n\
   P(b, null, g).\n\
   R(a, d).\n\
   T(b).\n\
   constraint ic_a: P(X, Y, Z) -> R(X, Y).\n\
   constraint ic_b: T(X) -> P(X, Y, Z).\n\
   query r_rows(X, Y): R(X, Y).\n"

let ex11_sat =
  Case.make ~family:"paper"
    ~doc:"Example 11: both constraints hold (null relevant attr, witness)"
    ~query:"r_rows"
    ~expect:
      (expect ~consistent_db:true ~repairs:1
         ~certain:[ [ vs "a"; vs "d" ] ]
         ~possible:[ [ vs "a"; vs "d" ] ]
         ())
    "ex11_sat" ex11_base

let ex11_viol =
  Case.make ~family:"paper"
    ~doc:"Example 11: inserting P(f, d, null) violates (a): no R(f, d)"
    ~query:"r_rows"
    ~expect:
      (expect ~consistent_db:false ~repairs:2
         ~certain:[ [ vs "a"; vs "d" ] ]
         ~possible:[ [ vs "a"; vs "d" ]; [ vs "f"; vs "d" ] ]
         ())
    "ex11_viol"
    (ex11_base ^ "insert P(f, d, null).\n")

let ex12_base =
  "relation P1(x, y, w).\n\
   relation P2(y, z).\n\
   relation Q(x, z, u).\n\
   P1(a, b, c).\n\
   P1(d, null, c).\n\
   P1(b, e, null).\n\
   P1(null, b, b).\n\
   P2(b, a).\n\
   P2(e, c).\n\
   P2(d, null).\n\
   P2(null, b).\n\
   Q(a, a, c).\n\
   Q(b, null, c).\n\
   Q(b, c, d).\n\
   Q(null, c, a).\n\
   constraint join: P1(X, Y, W), P2(Y, Z) -> Q(X, Z, U).\n\
   query q_rows(X, Y, Z): Q(X, Y, Z).\n"

let ex12_q_base =
  [
    [ vs "a"; vs "a"; vs "c" ];
    [ vs "b"; vn; vs "c" ];
    [ vs "b"; vs "c"; vs "d" ];
    [ vn; vs "c"; vs "a" ];
  ]

let ex12_sat =
  Case.make ~family:"paper"
    ~doc:"Example 12: null joins as an ordinary constant; satisfied"
    ~query:"q_rows"
    ~expect:
      (expect ~consistent_db:true ~repairs:1 ~certain:ex12_q_base
         ~possible:ex12_q_base ())
    "ex12_sat" ex12_base

let ex12_q_rest =
  [
    [ vs "a"; vs "a"; vs "c" ]; [ vs "b"; vn; vs "c" ]; [ vn; vs "c"; vs "a" ];
  ]

let ex12_viol =
  Case.make ~family:"paper"
    ~doc:
      "Example 12: deleting Q(b, c, d) orphans the (b, e, null)-(e, c) join"
    ~query:"q_rows"
    ~expect:
      (expect ~consistent_db:false ~repairs:3 ~certain:ex12_q_rest
         ~possible:(ex12_q_rest @ [ [ vs "b"; vs "c"; vn ] ])
         ())
    "ex12_viol"
    (ex12_base ^ "delete Q(b, c, d).\n")

let ex13_sat =
  Case.make ~family:"paper"
    ~doc:"Example 13: repeated existential witnessed by Q(a, null, null)"
    ~query:"q_rows"
    ~expect:
      (expect ~consistent_db:true ~repairs:1
         ~certain:[ [ vs "a"; vn; vn ] ]
         ~possible:[ [ vs "a"; vn; vn ] ]
         ())
    "ex13_sat"
    "relation P(x, y).\n\
     relation Q(x, z, w).\n\
     P(a, b).\n\
     P(null, c).\n\
     Q(a, null, null).\n\
     constraint rep_z: P(X, Y) -> Q(X, Z, Z).\n\
     query q_rows(X, Y, Z): Q(X, Y, Z).\n"

let ex13_viol =
  Case.make ~family:"paper"
    ~doc:"Example 13: Q(a, null, b) does not witness the repeated variable"
    ~query:"q_rows"
    ~expect:
      (expect ~consistent_db:false ~repairs:2
         ~certain:[ [ vs "a"; vn; vs "b" ] ]
         ~possible:[ [ vs "a"; vn; vs "b" ]; [ vs "a"; vn; vn ] ]
         ())
    "ex13_viol"
    "relation P(x, y).\n\
     relation Q(x, z, w).\n\
     P(a, b).\n\
     Q(a, null, b).\n\
     constraint rep_z: P(X, Y) -> Q(X, Z, Z).\n\
     query q_rows(X, Y, Z): Q(X, Y, Z).\n"

let paper =
  [
    ex4_sat; ex4_viol; ex5_sat; ex5_insert; ex6_sat; ex6_viol; ex8_sat;
    ex8_viol; ex9; ex11_sat; ex11_viol; ex12_sat; ex12_viol; ex13_sat;
    ex13_viol;
  ]

(* ------------------------------------------------------------------ *)
(* SQL-null algebra equivalences (SqlLike semantics): one key-conflicted
   instance with a null attribute, two provably equivalent query forms per
   case.  Shared fixture: the FD conflict {R(1,10), R(1,11)} yields two
   repairs; R(2,null) is vacuous for the FD (null in a relevant
   attribute) and R(3,30) is untouched. *)

let ft_fixture q1 q2 =
  "relation R(k, a).\n\
   R(1, 10).\n\
   R(1, 11).\n\
   R(2, null).\n\
   R(3, 30).\n\
   constraint fd: R(K, A), R(K, B) -> A = B.\n"
  ^ "query q1(K, A): " ^ q1 ^ ".\n"
  ^ "query q2(K, A): " ^ q2 ^ ".\n"

let ft_case name ~doc ~q1 ~q2 ~certain ~possible =
  Case.make ~family:"ft-null-algebra" ~doc ~query:"q1" ~equiv:"q2"
    ~semantics:Query.Qeval.SqlLike
    ~expect:(expect ~consistent_db:false ~repairs:2 ~certain ~possible ())
    name (ft_fixture q1 q2)

let row_10 = [ vi 1; vi 10 ]
let row_11 = [ vi 1; vi 11 ]
let row_null = [ vi 2; vn ]
let row_30 = [ vi 3; vi 30 ]

let ft =
  [
    ft_case "ft_self_eq"
      ~doc:"A = A filters exactly the non-null rows (x = x is unknown on null)"
      ~q1:"R(K, A) & !isnull(A)" ~q2:"R(K, A) & A = A"
      ~certain:[ row_30 ]
      ~possible:[ row_10; row_11; row_30 ];
    ft_case "ft_partition"
      ~doc:"= / != / IS NULL partition the domain: the disjunction is total"
      ~q1:"R(K, A)" ~q2:"R(K, A) & (A = 10 | A != 10 | isnull(A))"
      ~certain:[ row_null; row_30 ]
      ~possible:[ row_10; row_11; row_null; row_30 ];
    ft_case "ft_neg_pushdown"
      ~doc:"NOT(A = 10) = A != 10 OR A IS NULL (SQL negation is two-valued)"
      ~q1:"R(K, A) & !(A = 10)" ~q2:"R(K, A) & (A != 10 | isnull(A))"
      ~certain:[ row_null; row_30 ]
      ~possible:[ row_11; row_null; row_30 ];
    ft_case "ft_de_morgan"
      ~doc:"De Morgan under two-valued negation over unknown comparisons"
      ~q1:"R(K, A) & A > 5 & A < 40" ~q2:"R(K, A) & !(!(A > 5) | !(A < 40))"
      ~certain:[ row_30 ]
      ~possible:[ row_10; row_11; row_30 ];
    ft_case "ft_isnull_total"
      ~doc:"IS NULL OR IS NOT NULL is a tautology even where = is unknown"
      ~q1:"R(K, A)" ~q2:"R(K, A) & (isnull(A) | !isnull(A))"
      ~certain:[ row_null; row_30 ]
      ~possible:[ row_10; row_11; row_null; row_30 ];
    ft_case "ft_neq_irreflexive"
      ~doc:"A != A and A < A are both unsatisfiable (false or unknown)"
      ~q1:"R(K, A) & A != A" ~q2:"R(K, A) & A < A" ~certain:[] ~possible:[];
    ft_case "ft_cmp_flip"
      ~doc:"A > 5 = NOT(A <= 5) AND A IS NOT NULL"
      ~q1:"R(K, A) & A > 5" ~q2:"R(K, A) & !(A <= 5) & !isnull(A)"
      ~certain:[ row_30 ]
      ~possible:[ row_10; row_11; row_30 ];
  ]

let all = paper @ ft
