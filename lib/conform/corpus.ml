(* Generated scenario families.  Every case below is emitted by a
   parameterized generator that also derives the expectations in closed
   form (repair counts from the per-conflict choice structure,
   certain/possible sets from which tuples survive every/some repair), so
   the engines are cross-checked against combinatorics computed
   independently of any engine code path. *)

let vs = Relational.Value.str

let expect ?consistent_db ?repairs ?repd ?certain ?possible () =
  {
    Case.consistent_db;
    repairs;
    repd;
    certain = Option.map Case.pin_rows certain;
    possible = Option.map Case.pin_rows possible;
  }

let pow base e =
  let rec go acc e = if e <= 0 then acc else go (acc * base) (e - 1) in
  go 1 e

let lines l = String.concat "\n" (List.filter (fun s -> s <> "") l) ^ "\n"
let tag p i = Printf.sprintf "%s%d" p i

(* ------------------------------------------------------------------ *)
(* fk_chain: P <- C <- G binary foreign keys.  An orphan child C(x, miss)
   repairs by deletion or by inserting P(miss, null) (|=_N-vacuous); an
   orphan grandchild G(x, cmiss) by deletion or by inserting
   C(cmiss, null), itself vacuous for the upper FK.  Choices are
   independent: 2^(oc + og) repairs. *)

let fk_chain ~name ~parents ~children ~orphan_children ~orphan_grandchildren
    () =
  let p = List.init parents (fun i -> Printf.sprintf "P(%s, %s)." (tag "p" i) (tag "d" i)) in
  let c =
    List.init children (fun i ->
        Printf.sprintf "C(%s, %s)." (tag "c" i) (tag "p" (i mod parents)))
  in
  let g =
    List.init children (fun i ->
        Printf.sprintf "G(%s, %s)." (tag "g" i) (tag "c" (i mod children)))
  in
  let oc =
    List.init orphan_children (fun i ->
        Printf.sprintf "C(%s, %s)." (tag "cx" i) (tag "miss" i))
  in
  let og =
    List.init orphan_grandchildren (fun i ->
        Printf.sprintf "G(%s, %s)." (tag "gx" i) (tag "cmiss" i))
  in
  let source =
    lines
      ([
         "relation P(k, d).";
         "relation C(k, p).";
         "relation G(k, c).";
       ]
      @ p @ c @ g @ oc @ og
      @ [
          "constraint fk_c: C(X, Y) -> P(Y, D).";
          "constraint fk_g: G(X, Y) -> C(Y, D).";
          "query children(X): exists Y. C(X, Y).";
        ])
  in
  let base = List.init children (fun i -> [ vs (tag "c" i) ]) in
  let orphaned = List.init orphan_children (fun i -> [ vs (tag "cx" i) ]) in
  let inserted =
    List.init orphan_grandchildren (fun i -> [ vs (tag "cmiss" i) ])
  in
  Case.make ~family:"fk_chain" ~query:"children"
    ~doc:
      (Printf.sprintf
         "FK chain P<-C<-G: %d parent(s), %d chain(s), %d orphan child(ren), \
          %d orphan grandchild(ren)"
         parents children orphan_children orphan_grandchildren)
    ~expect:
      (expect
         ~consistent_db:(orphan_children + orphan_grandchildren = 0)
         ~repairs:(pow 2 (orphan_children + orphan_grandchildren))
         ~certain:base
         ~possible:(base @ orphaned @ inserted)
         ())
    name source

(* ------------------------------------------------------------------ *)
(* fd_cluster: [conflicts] key clusters of [width] FD-conflicting rows;
   every repair keeps exactly one row per cluster: width^conflicts. *)

let fd_cluster ~name ~rows ~conflicts ~width () =
  let base =
    List.init rows (fun i ->
        Printf.sprintf "R(%s, %s)." (tag "k" i) (tag "v" i))
  in
  let dups =
    List.concat
      (List.init conflicts (fun i ->
           List.init (width - 1) (fun j ->
               Printf.sprintf "R(%s, w%d_%d)." (tag "k" i) j i)))
  in
  let source =
    lines
      ([ "relation R(k, a)." ] @ base @ dups
      @ [
          "constraint fd: R(K, A), R(K, B) -> A = B.";
          "query vals(K, A): R(K, A).";
        ])
  in
  let clean =
    List.init (rows - conflicts) (fun i ->
        let i = i + conflicts in
        [ vs (tag "k" i); vs (tag "v" i) ])
  in
  let conflicted =
    List.concat
      (List.init conflicts (fun i ->
           [ vs (tag "k" i); vs (tag "v" i) ]
           :: List.init (width - 1) (fun j ->
                  [ vs (tag "k" i); vs (Printf.sprintf "w%d_%d" j i) ])))
  in
  Case.make ~family:"fd_cluster" ~query:"vals"
    ~doc:
      (Printf.sprintf "FD clusters: %d row(s), %d conflict(s) of width %d"
         rows conflicts width)
    ~expect:
      (expect ~consistent_db:(conflicts = 0)
         ~repairs:(pow width conflicts) ~certain:clean
         ~possible:(clean @ conflicted) ())
    name source

(* ------------------------------------------------------------------ *)
(* cyclic_ric: the RIC cycle A -> B -> C -> A.  A dangling A(d) repairs
   by deletion or by the insertion cascade B(d), C(d) (closing the cycle
   back on the present A(d)): 2^dangling. *)

let cyclic_ric ~name ~complete ~dangling () =
  let triples =
    List.concat
      (List.init complete (fun i ->
           [
             Printf.sprintf "A(%s)." (tag "a" i);
             Printf.sprintf "B(%s)." (tag "a" i);
             Printf.sprintf "C(%s)." (tag "a" i);
           ]))
  in
  let loose = List.init dangling (fun i -> Printf.sprintf "A(%s)." (tag "d" i)) in
  let source =
    lines
      ([ "relation A(x)."; "relation B(x)."; "relation C(x)." ]
      @ triples @ loose
      @ [
          "constraint ab: A(X) -> B(X).";
          "constraint bc: B(X) -> C(X).";
          "constraint ca: C(X) -> A(X).";
          "query members(X): A(X).";
        ])
  in
  let base = List.init complete (fun i -> [ vs (tag "a" i) ]) in
  let extra = List.init dangling (fun i -> [ vs (tag "d" i) ]) in
  Case.make ~family:"cyclic_ric" ~query:"members"
    ~doc:
      (Printf.sprintf "cyclic RICs A->B->C->A: %d closed, %d dangling"
         complete dangling)
    ~expect:
      (expect ~consistent_db:(dangling = 0) ~repairs:(pow 2 dangling)
         ~certain:base ~possible:(base @ extra) ())
    name source

(* ------------------------------------------------------------------ *)
(* nnc_ric: the Example 20 conflict shape — the NNC sits on the RIC's
   existentially quantified attribute, so the constraint set fails the
   non-conflicting Assumption of Section 4.  Here the two repair classes
   genuinely differ, and the family pins both:

   - [Rep(D, IC)] recovers the arbitrary-constant repairs of reference
     [2]: an unassigned employee keeps Emp(u) by inserting Dept(u, c) for
     ANY constant c of the active domain (null is blocked by the NNC, but
     each constant fill is <=_D-incomparable with the deletion), giving a
     (|dom| + 1)-way choice per unassigned employee.  An unaudited
     assignment stays a two-way choice (insert the audit row, or delete
     the assignment and cascade the employee; re-pointing the assignment
     is beaten by the bare audit insertion):
     (|dom| + 1)^unassigned * 2^unaudited repairs, with the unassigned
     employees possible (not certain) answers.
   - [Rep_d(D, IC)] discards the constant fills in favour of deletion:
     2^unaudited repairs, and unassigned employees are not even possible.

   The program tiers implement the null-padded program of Definition 9,
   which is sound only under the Assumption, so the runner skips them for
   this family (see {!Runner.tiers_for}). *)

let nnc_ric ~name ~staff ~unassigned ~unaudited () =
  let ok =
    List.concat
      (List.init staff (fun i ->
           [
             Printf.sprintf "Emp(%s)." (tag "s" i);
             Printf.sprintf "Dept(%s, %s)." (tag "s" i) (tag "dep" i);
             Printf.sprintf "Audit(%s)." (tag "s" i);
           ]))
  in
  let loose = List.init unassigned (fun i -> Printf.sprintf "Emp(%s)." (tag "u" i)) in
  let gaps =
    List.concat
      (List.init unaudited (fun i ->
           [
             Printf.sprintf "Emp(%s)." (tag "w" i);
             Printf.sprintf "Dept(%s, %s)." (tag "w" i) (tag "dw" i);
           ]))
  in
  let source =
    lines
      ([ "relation Emp(e)."; "relation Dept(e, d)."; "relation Audit(e)." ]
      @ ok @ loose @ gaps
      @ [
          "constraint ric: Emp(X) -> Dept(X, Y).";
          "constraint uic: Dept(X, Y) -> Audit(X).";
          "not_null Dept[2].";
          "query staff(X): Emp(X).";
        ])
  in
  let base = List.init staff (fun i -> [ vs (tag "s" i) ]) in
  let loose_rows = List.init unassigned (fun i -> [ vs (tag "u" i) ]) in
  let audited_gaps = List.init unaudited (fun i -> [ vs (tag "w" i) ]) in
  (* active domain: s_i and dep_i per staff, u_i, w_i and dw_i per gap *)
  let dom = (2 * staff) + unassigned + (2 * unaudited) in
  Case.make ~family:"nnc_ric" ~query:"staff"
    ~doc:
      (Printf.sprintf
         "NNC/RIC conflicts: %d staff, %d unassigned (constant fills vs \
          deletion), %d unaudited (two-way)"
         staff unassigned unaudited)
    ~expect:
      (expect
         ~consistent_db:(unassigned + unaudited = 0)
         ~repairs:(pow (dom + 1) unassigned * pow 2 unaudited)
         ~repd:(pow 2 unaudited) ~certain:base
         ~possible:(base @ loose_rows @ audited_gaps)
         ())
    name source

(* ------------------------------------------------------------------ *)
(* session_stream: a consistent base plus an insert/delete stream — the
   update-statement replay is the point (the session and serve tiers
   apply it through the incremental engine).  Each dangling insert and
   each revoked support is an independent two-way violation. *)

let session_stream ~name ~base ~added ~dangling ~revoked () =
  let start =
    List.concat
      (List.init base (fun i ->
           [
             Printf.sprintf "P(%s)." (tag "b" i);
             Printf.sprintf "Q(%s)." (tag "b" i);
           ]))
  in
  let stream =
    List.concat
      (List.init added (fun i ->
           [
             Printf.sprintf "insert P(%s)." (tag "n" i);
             Printf.sprintf "insert Q(%s)." (tag "n" i);
           ]))
    @ List.init dangling (fun i -> Printf.sprintf "insert P(%s)." (tag "x" i))
    @ List.init revoked (fun i -> Printf.sprintf "delete Q(%s)." (tag "b" i))
  in
  let source =
    lines
      ([ "relation P(x)."; "relation Q(x)." ]
      @ start
      @ [ "constraint pq: P(X) -> Q(X)."; "query members(X): P(X)." ]
      @ stream)
  in
  let kept =
    List.init (base - revoked) (fun i -> [ vs (tag "b" (i + revoked)) ])
    @ List.init added (fun i -> [ vs (tag "n" i) ])
  in
  let contested =
    List.init revoked (fun i -> [ vs (tag "b" i) ])
    @ List.init dangling (fun i -> [ vs (tag "x" i) ])
  in
  Case.make ~family:"session_stream" ~query:"members"
    ~doc:
      (Printf.sprintf
         "update stream: %d base pair(s), %d added, %d dangling insert(s), \
          %d revoked support(s)"
         base added dangling revoked)
    ~expect:
      (expect
         ~consistent_db:(dangling + revoked = 0)
         ~repairs:(pow 2 (dangling + revoked))
         ~certain:kept
         ~possible:(kept @ contested) ())
    name source

(* ------------------------------------------------------------------ *)

let families =
  [
    ( "fk_chain",
      [
        fk_chain ~name:"fk_chain_clean" ~parents:2 ~children:3
          ~orphan_children:0 ~orphan_grandchildren:0 ();
        fk_chain ~name:"fk_chain_orphans" ~parents:2 ~children:3
          ~orphan_children:2 ~orphan_grandchildren:1 ();
        fk_chain ~name:"fk_chain_deep" ~parents:1 ~children:2
          ~orphan_children:1 ~orphan_grandchildren:2 ();
      ] );
    ( "fd_cluster",
      [
        fd_cluster ~name:"fd_cluster_single" ~rows:3 ~conflicts:1 ~width:2 ();
        fd_cluster ~name:"fd_cluster_pair" ~rows:4 ~conflicts:2 ~width:2 ();
        fd_cluster ~name:"fd_cluster_wide" ~rows:3 ~conflicts:2 ~width:3 ();
      ] );
    ( "cyclic_ric",
      [
        cyclic_ric ~name:"cyclic_ric_clean" ~complete:2 ~dangling:0 ();
        cyclic_ric ~name:"cyclic_ric_dangling" ~complete:2 ~dangling:2 ();
        cyclic_ric ~name:"cyclic_ric_deep" ~complete:1 ~dangling:3 ();
      ] );
    ( "nnc_ric",
      [
        nnc_ric ~name:"nnc_ric_forced" ~staff:1 ~unassigned:2 ~unaudited:0 ();
        nnc_ric ~name:"nnc_ric_mixed" ~staff:1 ~unassigned:1 ~unaudited:2 ();
        nnc_ric ~name:"nnc_ric_audit" ~staff:2 ~unassigned:0 ~unaudited:3 ();
      ] );
    ( "session_stream",
      [
        session_stream ~name:"session_stream_clean" ~base:2 ~added:1
          ~dangling:0 ~revoked:0 ();
        session_stream ~name:"session_stream_churn" ~base:2 ~added:1
          ~dangling:1 ~revoked:1 ();
        session_stream ~name:"session_stream_revoke" ~base:3 ~added:0
          ~dangling:0 ~revoked:2 ();
      ] );
  ]

let all = List.concat_map snd families

let ensure_dir path = if not (Sys.file_exists path) then Sys.mkdir path 0o755

let write_corpus dir =
  ensure_dir dir;
  List.concat_map
    (fun (family, cases) ->
      let fdir = Filename.concat dir family in
      ensure_dir fdir;
      List.map
        (fun (c : Case.t) ->
          let path = Filename.concat fdir (c.Case.name ^ ".cqa") in
          Out_channel.with_open_text path (fun oc ->
              output_string oc (Printf.sprintf "%% %s\n" c.Case.doc);
              output_string oc c.Case.source);
          path)
        cases)
    families
