type t = { jobs : int }

let default = { jobs = 1 }

let resolve jobs =
  if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs

let make ~jobs = { jobs = resolve jobs }
