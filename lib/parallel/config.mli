(** Parallel-execution configuration, threaded as [~jobs] through the
    decomposed engines.

    [jobs = 1] (the default everywhere) is the sequential path: no pool,
    no domains, bit-for-bit the pre-parallel engine.  [jobs = 0] on the
    CLI means "auto": [Domain.recommended_domain_count ()]. *)

type t = { jobs : int }

val default : t
(** [{ jobs = 1 }] — sequential. *)

val resolve : int -> int
(** [resolve 0] is [Domain.recommended_domain_count ()]; any other value
    is clamped to at least [1]. *)

val make : jobs:int -> t
(** [{ jobs = resolve jobs }]. *)
