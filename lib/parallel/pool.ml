type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  tasks_run : int Atomic.t array;
}

let size t = t.size

(* Worker loop: pull the next task under the pool lock, run it outside.
   Tasks are the closures [map] enqueues; they never raise (map boxes the
   payload's exception into the result slot), so a worker only exits when
   the pool is closed and the queue has drained. *)
let rec worker_loop pool w =
  Mutex.lock pool.lock;
  let rec next () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if pool.closed then None
    else begin
      Condition.wait pool.work_available pool.lock;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock pool.lock
  | Some task ->
      Mutex.unlock pool.lock;
      (* count before running: a task whose completion [map] has observed
         is then guaranteed to be visible in [tasks_run] *)
      Atomic.incr pool.tasks_run.(w);
      task ();
      worker_loop pool w

let create ?(init = fun _ -> ()) ~jobs () =
  let size = max 1 jobs in
  let pool =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      closed = false;
      domains = [||];
      tasks_run = Array.init size (fun _ -> Atomic.make 0);
    }
  in
  (* spawn after the record is fully built: Domain.spawn gives the worker a
     happens-before edge on every field it reads *)
  pool.domains <-
    Array.init size (fun w ->
        Domain.spawn (fun () ->
            init w;
            worker_loop pool w));
  pool

let close pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let tasks_run pool = Array.to_list (Array.map Atomic.get pool.tasks_run)

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let remaining = Atomic.make n in
      let done_lock = Mutex.create () in
      let all_done = Condition.create () in
      let task i () =
        let r = match f arr.(i) with v -> Ok v | exception e -> Error e in
        results.(i) <- Some r;
        (* the decrement is the release fence publishing results.(i); the
           caller's read of [remaining] is the matching acquire *)
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_lock;
          Condition.signal all_done;
          Mutex.unlock done_lock
        end
      in
      Mutex.lock pool.lock;
      for i = 0 to n - 1 do
        Queue.push (task i) pool.queue
      done;
      Condition.broadcast pool.work_available;
      Mutex.unlock pool.lock;
      Mutex.lock done_lock;
      while Atomic.get remaining > 0 do
        Condition.wait all_done done_lock
      done;
      Mutex.unlock done_lock;
      (* Deterministic ordered merge: results come back in input order, and
         if any task raised, the lowest-index exception is re-raised —
         independent of which worker ran what when. *)
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false)
           results)

let run pool f =
  let result = ref None in
  let done_lock = Mutex.create () in
  let finished = Condition.create () in
  let task () =
    let r = match f () with v -> Ok v | exception e -> Error e in
    Mutex.lock done_lock;
    result := Some r;
    Condition.signal finished;
    Mutex.unlock done_lock
  in
  Mutex.lock pool.lock;
  Queue.push task pool.queue;
  Condition.signal pool.work_available;
  Mutex.unlock pool.lock;
  Mutex.lock done_lock;
  let rec wait () =
    match !result with
    | None ->
        Condition.wait finished done_lock;
        wait ()
    | Some r -> r
  in
  let r = wait () in
  Mutex.unlock done_lock;
  match r with Ok v -> v | Error e -> raise e

let with_pool ?init ~jobs f =
  let pool = create ?init ~jobs () in
  match f pool with
  | v ->
      close pool;
      v
  | exception e ->
      close pool;
      raise e
