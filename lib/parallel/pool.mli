(** A fixed-size domain pool with a deterministic ordered-merge [map].

    The execution substrate of the decomposed engines
    ({!Repair.Enumerate}, {!Core.Engine}, {!Query.Cqa}): per-component
    repair programs ground and solve concurrently on worker domains while
    every recombination step stays byte-identical to the sequential path,
    because

    - {!map} returns results in {e input} order regardless of which worker
      finished what when (the ordered merge);
    - if several tasks raise, the exception of the {e lowest-index} task is
      re-raised — exception propagation is as deterministic as the results
      (the engines never rely on this: they box expected exceptions into
      result values inside the task);
    - workers run pure per-component solves; the only shared mutable state
      is the run's {!Budget}, whose counters are atomic.

    Built on stdlib [Domain]/[Mutex]/[Condition]/[Atomic] only — no
    domainslib. *)

type t

val create : ?init:(int -> unit) -> jobs:int -> unit -> t
(** Spawn [max 1 jobs] worker domains.  [init w] runs first on worker
    [w] (0-based) — the engines use it to assign the worker's
    {!Budget} stats slot.  Workers idle on a condition variable until
    {!map} enqueues tasks, and exit when {!close} is called. *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] runs [f] on every element concurrently (singleton and
    empty lists run in the calling domain) and blocks until all are done.
    Results are returned in input order; if any [f x] raised, the
    lowest-index exception is re-raised after all tasks finished.  [f]
    must be safe to run on a worker domain: no shared mutable state
    beyond atomics. *)

val run : t -> (unit -> 'a) -> 'a
(** [run pool f] executes [f ()] on a worker domain — always, unlike
    {!map}'s singleton shortcut — blocks the calling thread until it
    finishes, and returns its result (re-raising its exception).  This is
    the server's request dispatch: many connection threads block here
    concurrently while [--jobs] worker domains execute the actual
    solves.  [f] must not call back into the same pool ({!map}/{!run}
    from a worker would deadlock when every worker is blocked waiting). *)

val tasks_run : t -> int list
(** Tasks completed per worker, in worker order — the per-worker share of
    the run, surfaced by [--stats]. *)

val close : t -> unit
(** Drain and join all workers.  Idempotent. *)

val with_pool : ?init:(int -> unit) -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, [close] (also on exception). *)
