(** Repairs by independent components — the "local repairs" construction
    the paper leaves as future work (Conclusions, item (c)).

    Two constraints interact only if they share a database predicate.
    Partitioning [IC] into connected components of the share-a-predicate
    graph, the repairs of [D] factor into a product: tuples over predicates
    untouched by any constraint are kept verbatim, and each component is
    repaired independently on its slice of the database.  The factorization
    is exact because violations, repair actions and the [<=_D] comparison
    all stay within a component's predicates (deltas over disjoint
    predicate sets combine independently).

    The product can be exponentially large (it {e is} the repair set), but
    each component's search runs on a fraction of the database, so
    grounding and solving costs drop from one large problem to several
    small ones — measured in bench table E11. *)

val components : Ic.Constr.t list -> (Ic.Constr.t list * string list) list
(** Constraint groups with their predicates, deterministic order. *)

type stats = {
  component_count : int;
  largest_component : int;  (** constraints in the largest group *)
  repairs_per_component : int list;
}

val repairs :
  ?engine:[ `Enumerate | `Program ] ->
  ?budget:Budget.ctl ->
  ?max_effort:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  (Relational.Instance.t list * stats, string) result
(** The full repair set, assembled from per-component repairs.  [engine]
    selects the per-component solver (default [`Program]).  Budget
    exhaustion (including the shared [budget]'s limits and deadline) is an
    [Error], never an exception. *)
