module Instance = Relational.Instance

let ( let* ) = Result.bind

(* Union-find over constraint indices, linked through shared predicates. *)
let components ics =
  let arr = Array.of_list ics in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let by_pred = Hashtbl.create 16 in
  Array.iteri
    (fun i ic ->
      List.iter
        (fun p ->
          (match Hashtbl.find_opt by_pred p with
          | Some j -> union i j
          | None -> ());
          Hashtbl.replace by_pred p i)
        (Ic.Constr.preds ic))
    arr;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i ic ->
      let r = find i in
      Hashtbl.replace groups r (ic :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    arr;
  Hashtbl.fold (fun _ ics acc -> List.rev ics :: acc) groups []
  |> List.map (fun group ->
         let preds =
           List.concat_map Ic.Constr.preds group |> List.sort_uniq String.compare
         in
         (group, preds))
  |> List.sort compare

type stats = {
  component_count : int;
  largest_component : int;
  repairs_per_component : int list;
}

let product lists =
  List.fold_left
    (fun acc choices ->
      List.concat_map (fun partial -> List.map (fun c -> Instance.union partial c) choices) acc)
    [ Instance.empty ] lists

let repairs ?(engine = `Program) ?budget ?max_effort d ics =
  let groups = components ics in
  let constrained_preds = List.concat_map snd groups in
  let untouched =
    Instance.filter
      (fun a -> not (List.mem (Relational.Atom.pred a) constrained_preds))
      d
  in
  let solve_component (group, preds) =
    let slice = Relational.Projection.restrict_to preds d in
    match engine with
    | `Enumerate -> (
        match
          Repair.Enumerate.repairs ?budget ?max_states:max_effort slice group
        with
        | reps -> Ok reps
        | exception Repair.Enumerate.Budget_exceeded n ->
            Error (Printf.sprintf "budget (%d states) exceeded" n)
        | exception Budget.Exhausted e -> Error (Budget.message e))
    | `Program -> Engine.repairs ?budget ?max_decisions:max_effort slice group
  in
  let* per_component =
    List.fold_left
      (fun acc comp ->
        let* acc = acc in
        let* reps = solve_component comp in
        Ok (reps :: acc))
      (Ok []) groups
  in
  let per_component = List.rev per_component in
  let combined =
    List.map (Instance.union untouched) (product per_component)
  in
  Ok
    ( combined,
      {
        component_count = List.length groups;
        largest_component =
          List.fold_left (fun m (g, _) -> max m (List.length g)) 0 groups;
        repairs_per_component = List.map List.length per_component;
      } )
