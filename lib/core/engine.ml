type report = {
  repairs : Relational.Instance.t list;
  stable_model_count : int;
  ground_atoms : int;
  ground_rules : int;
  hcf : bool;
  static_hcf : bool;
  shifted : bool;
  ric_acyclic : bool;
  solver : Asp.Solver.stats;
}

(* Ground and solve one repair program.  Raises the budget exceptions of
   the grounder/solver; [run] and [solve_components] below are the
   conversion boundaries — no exception escapes a public Engine API. *)
let run_exn ?budget ?(shift = true) ?(solver = `Counter) ?search ?max_decisions
    d ics (pg : Proggen.t) =
  let ground = Asp.Grounder.ground ?budget pg.Proggen.program in
  let hcf = Asp.Hcf.is_hcf ground in
  let shifted = shift && hcf in
  let solvable = if shifted then Asp.Shift.ground ground else ground in
  let stats = Asp.Solver.new_stats () in
  let solve =
    match solver with
    | `Counter -> Asp.Solver.stable_models ?search
    | `Naive -> Asp.Solver.stable_models_naive
  in
  let models =
    solve ?budget ?max_decisions ~stats solvable
    |> List.map (Asp.Ground.model_atoms solvable)
  in
  let extracted = Extract.databases_of_models pg.Proggen.names models in
  (* For RIC-acyclic IC the stable models are exactly the repairs
     (Theorem 4) and this filter is a no-op.  For cyclic sets the
     disjunctive rules can support deletion cascades circularly (a
     delete-advice on the RIC side firing the UIC rule and vice versa),
     producing stable models whose databases are consistent but not
     <=_D-minimal; filtering recovers Rep(D, IC). *)
  let repairs = Repair.Order.minimal_among ~d extracted in
  {
    repairs;
    stable_model_count = List.length models;
    ground_atoms = Asp.Ground.atom_count ground;
    ground_rules = Asp.Ground.rule_count ground;
    hcf;
    static_hcf = Hcfcheck.static_hcf ics;
    shifted;
    ric_acyclic = Ic.Depgraph.is_ric_acyclic ics;
    solver = stats;
  }

let run ?variant ?optimize ?shift ?solver ?search ?budget ?max_decisions d ics
    =
  Result.bind (Proggen.repair_program ?variant ?optimize d ics) (fun pg ->
      match run_exn ?budget ?shift ?solver ?search ?max_decisions d ics pg with
      | report -> Ok report
      | exception Asp.Solver.Budget_exceeded n ->
          Error (Budget.message (Budget.Decisions n))
      | exception Budget.Exhausted e -> Error (Budget.message e))

type components_result = {
  solved : Relational.Instance.t list list;
  completed : int;
  exhausted : Budget.exhausted option;
}

let solve_components ?variant ?optimize ?budget ?search ?max_decisions
    ?(jobs = 1) (plan : Repair.Decompose.plan) =
  let component_base (c : Repair.Decompose.component) =
    Relational.Instance.union c.Repair.Decompose.sub c.Repair.Decompose.support
  in
  (* One component ground-and-solved, with every expected failure boxed
     into a value — on a worker domain nothing may escape the task. *)
  let solve_one (c : Repair.Decompose.component) =
    let base = component_base c in
    match
      Result.bind
        (Proggen.repair_program ?variant ?optimize base c.Repair.Decompose.ics)
        (fun pg ->
          Ok
            (run_exn ?budget ?search ?max_decisions base
               c.Repair.Decompose.ics pg))
    with
    | Ok report ->
        (match budget with
        | Some b -> Budget.note_worker_component b
        | None -> ());
        `Repairs report.repairs
    | Error msg -> `Err msg
    | exception Asp.Solver.Budget_exceeded bn -> `Exhausted (Budget.Decisions bn)
    | exception Budget.Exhausted ex -> `Exhausted ex
  in
  (* Mirrors Repair.Enumerate.decomposed: results are scanned in plan order
     (the prefix rule), so the merge is deterministic regardless of which
     worker solved what.  On exhaustion the solved prefix keeps its repairs
     and the remaining components degrade to their unrepaired base slice,
     marked [exhausted]; a program-generation error still fails the whole
     run, exactly like the sequential traversal. *)
  let merge results =
    let rec scan acc n = function
      | [] -> Ok { solved = List.rev acc; completed = n; exhausted = None }
      | (`Repairs reps, _) :: rest ->
          (match budget with Some b -> Budget.note_component b | None -> ());
          scan (reps :: acc) (n + 1) rest
      | (`Err msg, _) :: _ -> Error msg
      | (`Exhausted ex, _) :: _ as remaining ->
          let filler =
            List.map (fun (_, c) -> [ component_base c ]) remaining
          in
          Ok
            {
              solved = List.rev_append acc filler;
              completed = n;
              exhausted = Some ex;
            }
    in
    scan [] 0 (List.combine results plan.Repair.Decompose.components)
  in
  let components = plan.Repair.Decompose.components in
  if jobs <= 1 || List.length components <= 1 then
    (* sequential path: stop solving at the first failure so no budget is
       spent past the trip point — the historical behavior *)
    let rec seq acc = function
      | [] -> merge (List.rev acc)
      | c :: rest -> (
          match solve_one c with
          | `Repairs _ as r -> seq (r :: acc) rest
          | (`Err _ | `Exhausted _) as r ->
              merge (List.rev_append acc (r :: List.map (fun _ -> r) rest)))
    in
    seq [] components
  else
    merge
      (Parallel.Pool.with_pool ~jobs
         ~init:(fun w -> Budget.set_worker_slot (w + 1))
         (fun pool -> Parallel.Pool.map pool solve_one components))

let repairs ?variant ?optimize ?budget ?search ?max_decisions
    ?(decompose = false) ?jobs d ics =
  let monolithic () =
    Result.map
      (fun r -> r.repairs)
      (run ?variant ?optimize ?budget ?search ?max_decisions d ics)
  in
  if not decompose then monolithic ()
  else
    match Repair.Decompose.plan ?budget d ics with
    | exception Budget.Exhausted e -> Error (Budget.message e)
    | plan -> (
        match plan.Repair.Decompose.components with
        | [] -> Ok [ d ]
        | _ ->
            if not plan.Repair.Decompose.product_exact then
              (* per-component minimal repairs cannot be recombined exactly
                 when cross-component <=_D covering is possible, and the
                 program gives no access to non-minimal consistent states —
                 stay monolithic *)
              monolithic ()
            else
              Result.bind
                (solve_components ?variant ?optimize ?budget ?search
                   ?max_decisions ?jobs plan)
                (fun r ->
                  match r.exhausted with
                  | Some e ->
                      (* [repairs] promises the full repair set: a partial
                         recombination would silently misrepresent it — the
                         partial-outcome path lives in Query.Cqa *)
                      Error (Budget.message e)
                  | None ->
                      Ok
                        (List.of_seq
                           (Repair.Decompose.product plan.Repair.Decompose.core
                              r.solved))))
