(** The logic-programming repair engine: generate [Pi(D, IC)], ground it,
    shift it when head-cycle-free, enumerate its stable models and read the
    repairs off them (Theorem 4).

    Every entry point returns [Error] on budget exhaustion — the grounder's
    and solver's budget exceptions ({!Budget.Exhausted},
    {!Asp.Solver.Budget_exceeded}) are caught here and never escape. *)

type report = {
  repairs : Relational.Instance.t list;
  stable_model_count : int;  (** may exceed [List.length repairs] *)
  ground_atoms : int;
  ground_rules : int;
  hcf : bool;          (** ground-level head-cycle-freeness *)
  static_hcf : bool;   (** Theorem 5's static sufficient condition *)
  shifted : bool;      (** solved as a shifted normal program *)
  ric_acyclic : bool;  (** Definition 1 (Theorem 4's hypothesis) *)
  solver : Asp.Solver.stats;
}

val run :
  ?variant:Proggen.variant ->
  ?optimize:bool ->
  ?shift:bool ->
  ?solver:[ `Counter | `Naive ] ->
  ?search:Asp.Solver.search ->
  ?budget:Budget.ctl ->
  ?max_decisions:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  (report, string) result
(** [shift] defaults to true: the ground program is shifted to a normal one
    whenever it is HCF (Section 6); pass false to always solve the
    disjunctive program directly (used by bench table E4).  [solver]
    selects the stable-model engine: [`Counter] (default) is the
    occurrence-indexed counter-propagation engine, [`Naive] the sweep-based
    reference — the E4 before/after columns run both through this switch.
    [search] (default [`Cdcl]) picks the [`Counter] engine's search mode —
    conflict-driven clause learning or the chronological DPLL baseline —
    and is ignored under [`Naive].
    [optimize] applies the relevance pruning of {!Proggen.repair_program}.
    [budget] bounds grounding and solving under the shared run budget
    (decision limit and wall-clock deadline); exhaustion of either it or
    [max_decisions] yields [Error], never an exception. *)

type components_result = {
  solved : Relational.Instance.t list list;
      (** per-component repair lists, in plan order; after an exhaustion the
          unsolved suffix degrades to the component's unrepaired base slice
          ([sub ∪ support]) as sole entry *)
  completed : int;  (** components fully solved before any exhaustion *)
  exhausted : Budget.exhausted option;
}

val solve_components :
  ?variant:Proggen.variant ->
  ?optimize:bool ->
  ?budget:Budget.ctl ->
  ?search:Asp.Solver.search ->
  ?max_decisions:int ->
  ?jobs:int ->
  Repair.Decompose.plan ->
  (components_result, string) result
(** Generate, ground and solve one repair program per conflict component of
    the plan ([sub ∪ support] against the component's constraints) —
    {!Repair.Enumerate.decomposed}'s counterpart for this engine, and the
    building block of decomposed CQA ({!Query.Cqa}).  Budget trips
    mid-traversal keep the solved prefix and set [exhausted] (graceful
    degradation); program-generation failures are genuine [Error]s.

    [jobs > 1] grounds and solves the per-component programs concurrently
    on a {!Parallel.Pool}; the merge scans results in plan order (the
    prefix rule of {!Repair.Enumerate.decomposed}), so without a tripped
    limit the result is bit-identical to [jobs = 1]. *)

val repairs :
  ?variant:Proggen.variant ->
  ?optimize:bool ->
  ?budget:Budget.ctl ->
  ?search:Asp.Solver.search ->
  ?max_decisions:int ->
  ?decompose:bool ->
  ?jobs:int ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  (Relational.Instance.t list, string) result
(** Just the repairs.  With [~decompose:true] (default [false]) the program
    is generated, grounded and solved independently per conflict component
    of {!Repair.Decompose} and the per-component repairs are recombined by
    cross product over the untouched core; when the plan reports that
    cross-component [<=_D] covering is possible ([product_exact = false])
    the call falls back to the monolithic program, since stable models only
    yield the minimal repairs.  This function promises the full repair set,
    so exhaustion mid-decomposition is an [Error] — partial outcomes live
    in {!Query.Cqa}.  [jobs] (default [1]) parallelizes the per-component
    solves as in {!solve_components}; the recombination is deterministic,
    so the repair list is identical across [jobs] settings. *)
