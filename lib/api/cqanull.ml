(** Facade: the whole library under one namespace.

    [open Cqanull] (or [module C = Cqanull]) gives access to every
    sub-library without naming the individual dune libraries:

    {[
      let repairs = Cqanull.Repair.Enumerate.repairs d ics
      let report  = Cqanull.Core.Engine.run d ics
    ]} *)

module Relational = Relational
(** Values (incl. [null]), tuples, schemas, instances, projections. *)

module Ic = Ic
(** Constraints of form (1), relevant attributes, dependency graphs. *)

module Semantics = Semantics
(** IC satisfaction: [|=_N] and the baseline semantics; admission checks. *)

module Repair = Repair
(** The [<=_D] order, repair enumeration, checking, [Rep_d]. *)

module Asp = Asp
(** The answer-set-programming substrate: grounder, solver, HCF, export. *)

module Core = Core
(** Repair programs [Pi(D, IC)], the engine, decomposition, null-flow. *)

module Query = Query
(** Safe first-order queries, evaluation over nulls, CQA. *)

module Lang = Lang
(** The surface language: parser, loader, emitter. *)

module Workload = Workload
(** The paper's instances and synthetic generators. *)

module Budget = Budget
(** Shared resource budgets: limits, deadline, per-stage stats. *)

module Delta = Delta
(** Update batches over instances: insert/delete ops, net effect. *)

module Session = Session
(** The incremental session engine: delta maintenance, component-keyed
    solve cache, serving-loop building blocks. *)
