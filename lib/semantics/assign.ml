module Smap = Map.Make (String)
module Value = Relational.Value

type t = Value.t Smap.t

let empty = Smap.empty
let find a x = Smap.find_opt x a

let bind a x v =
  match Smap.find_opt x a with
  | None -> Some (Smap.add x v a)
  | Some w -> if Value.equal v w then Some a else None

let lookup_exn a x =
  match Smap.find_opt x a with
  | Some v -> v
  | None -> raise Not_found

let bindings a = Smap.bindings a
let of_list l = List.fold_left (fun a (x, v) -> Smap.add x v a) empty l
let restrict a vars = Smap.filter (fun x _ -> List.mem x vars) a
let equal = Smap.equal Value.equal
let compare = Smap.compare Value.compare

let pp ppf a =
  let pp_binding ppf (x, v) = Fmt.pf ppf "%s=%a" x Value.pp v in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp_binding) (bindings a)

let value_of_term a = function
  | Ic.Term.Const v -> Some v
  | Ic.Term.Var x -> find a x

let match_tuple a terms tuple =
  if List.length terms <> Relational.Tuple.arity tuple then None
  else
    let rec go a i = function
      | [] -> Some a
      | t :: rest -> (
          let v = tuple.(i) in
          match t with
          | Ic.Term.Const c ->
              if Value.equal c v then go a (i + 1) rest else None
          | Ic.Term.Var x -> (
              match bind a x v with
              | Some a -> go a (i + 1) rest
              | None -> None))
    in
    go a 0 terms

(* first position of the atom whose term is ground under theta, with its
   value, if any — the position the relation's per-attribute hash index is
   probed on *)
let bound_position theta atom =
  let rec go i = function
    | [] -> None
    | t :: rest -> (
        match value_of_term theta t with
        | Some value -> Some (i, value)
        | None -> go (i + 1) rest)
  in
  go 0 (Ic.Patom.terms atom)

let atom_matches d a atom =
  let acc = ref [] in
  let try_tuple t =
    match match_tuple a (Ic.Patom.terms atom) t with
    | Some a' -> acc := a' :: !acc
    | None -> ()
  in
  (match bound_position a atom with
  | Some (pos, value) ->
      Relational.Instance.iter_matching d (Ic.Patom.pred atom) ~pos value
        try_tuple
  | None -> Relational.Instance.iter_rel d (Ic.Patom.pred atom) try_tuple);
  !acc

(* Greedy join ordering: at each step match the not-yet-matched atom with
   the most bound positions (constants and already-bound variables), which
   is the most selective; ties go to the smaller relation.  Witnesses are
   reported in the original antecedent order regardless.

   When the selected atom has a bound position, the relation is probed
   through the instance's persistent per-attribute hash index
   ({!Relational.Instance.iter_matching}) — built once per segment and
   shared across every join, constraint and session request over that
   instance — which turns FD-style self-joins from quadratic scans into
   hash lookups without any per-call index construction. *)
let iter_join_with_witness d a atoms ~f =
  let arr = Array.of_list atoms in
  let n = Array.length arr in
  let bound_score theta atom =
    List.fold_left
      (fun score t ->
        match t with
        | Ic.Term.Const _ -> score + 1
        | Ic.Term.Var x -> if Option.is_some (find theta x) then score + 1 else score)
      0 (Ic.Patom.terms atom)
  in
  let witness = Array.make (max n 1) None in
  let used = Array.make n false in
  let rec go theta count =
    if count = n then begin
      let ws =
        Array.to_list witness |> List.filteri (fun i _ -> i < n)
        |> List.map Option.get
      in
      f theta ws
    end
    else begin
      let best = ref (-1) in
      let best_key = ref (-1, 0) in
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let score = bound_score theta arr.(i) in
          let size = Relational.Instance.rel_cardinal d (Ic.Patom.pred arr.(i)) in
          let key = (score, -size) in
          if !best = -1 || key > !best_key then begin
            best := i;
            best_key := key
          end
        end
      done;
      let i = !best in
      let atom = arr.(i) in
      used.(i) <- true;
      let try_tuple t =
        match match_tuple theta (Ic.Patom.terms atom) t with
        | None -> ()
        | Some theta' ->
            witness.(i) <- Some (Relational.Atom.of_tuple (Ic.Patom.pred atom) t);
            go theta' (count + 1)
      in
      (match bound_position theta atom with
      | Some (pos, value) ->
          Relational.Instance.iter_matching d (Ic.Patom.pred atom) ~pos value
            try_tuple
      | None ->
          Relational.Instance.iter_rel d (Ic.Patom.pred atom) try_tuple);
      used.(i) <- false;
      witness.(i) <- None
    end
  in
  go a 0

let join_with_witness d a atoms =
  let results = ref [] in
  iter_join_with_witness d a atoms ~f:(fun theta ws ->
      results := (theta, ws) :: !results);
  List.rev !results

let join d a atoms = List.map fst (join_with_witness d a atoms)

let exists_match d a atom =
  let terms = Ic.Patom.terms atom in
  let matches t = Option.is_some (match_tuple a terms t) in
  match bound_position a atom with
  | Some (pos, value) ->
      Relational.Instance.exists_matching d (Ic.Patom.pred atom) ~pos value
        matches
  | None -> Relational.Instance.exists_rel d (Ic.Patom.pred atom) matches

let prepared_exists d ~bound atom =
  let terms = Ic.Patom.terms atom in
  let probe =
    let rec go i = function
      | [] -> None
      | Ic.Term.Const _ :: _ -> Some i
      | Ic.Term.Var x :: rest -> if List.mem x bound then Some i else go (i + 1) rest
    in
    go 0 terms
  in
  match probe with
  | None -> fun theta -> exists_match d theta atom
  | Some pos -> (
      let term = List.nth terms pos in
      fun theta ->
        match value_of_term theta term with
        | None -> exists_match d theta atom
        | Some value ->
            Relational.Instance.exists_matching d (Ic.Patom.pred atom) ~pos value
              (fun t -> Option.is_some (match_tuple theta terms t)))
