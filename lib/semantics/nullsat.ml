module Value = Relational.Value
module Instance = Relational.Instance

type violation = {
  ic : Ic.Constr.t;
  theta : Assign.t;
  matched : Relational.Atom.t list;
}

let pp_violation ppf v =
  Fmt.pf ppf "@[<h>%s violated by %a under %a@]" (Ic.Constr.label v.ic)
    Fmt.(list ~sep:(any ", ") Relational.Atom.pp)
    v.matched Assign.pp v.theta

let phi_holds g theta =
  let lookup x = Assign.lookup_exn theta x in
  List.exists (Ic.Builtin.eval lookup) g.Ic.Constr.phi

let consequent_holds d g theta =
  List.exists (fun atom -> Assign.exists_match d theta atom) g.Ic.Constr.cons
  || phi_holds g theta

(* Generic constraint: a total antecedent match violates unless a relevant
   universal variable is bound to null (the IsNull disjuncts of formula (4))
   or the consequent holds.  Consequent existence tests are prepared once
   per call so that repeated checks probe a hash index instead of scanning
   the relation (Assign.prepared_exists).  The antecedent join is consumed
   as it is produced, so callers that only want the first witness
   (consistency checks, admission checks) abort after one match instead of
   materializing every violation. *)
let iter_generic_violations d g ic ~f =
  let relevant = Ic.Relevant.relevant_universal_vars g in
  let universal = Ic.Constr.universal_vars g in
  let checkers =
    List.map (Assign.prepared_exists d ~bound:universal) g.Ic.Constr.cons
  in
  let fast_consequent theta =
    List.exists (fun check -> check theta) checkers || phi_holds g theta
  in
  Assign.iter_join_with_witness d Assign.empty g.Ic.Constr.ante
    ~f:(fun theta witness ->
      let null_escape =
        List.exists
          (fun x ->
            match Assign.find theta x with
            | Some v -> Value.is_null v
            | None -> false)
          relevant
      in
      if not (null_escape || fast_consequent theta) then
        f { ic; theta; matched = witness })

let generic_violations d g ic =
  let acc = ref [] in
  iter_generic_violations d g ic ~f:(fun v -> acc := v :: !acc);
  List.rev !acc

(* NNC offenders are exactly the posting list of [null] at the constrained
   column — one index probe instead of a relation scan.  The accumulator is
   consed over the ascending probe, preserving the historical (descending)
   report order of the set-fold implementation. *)
let nnc_violations (n : (string * int * int)) ic d =
  let pred, _arity, pos = n in
  let acc = ref [] in
  Instance.iter_matching d pred ~pos:(pos - 1) Value.null (fun t ->
      acc :=
        { ic; theta = Assign.empty; matched = [ Relational.Atom.of_tuple pred t ] }
        :: !acc);
  !acc

let violations d ic =
  match ic with
  | Ic.Constr.Generic g -> generic_violations d g ic
  | Ic.Constr.NotNull n -> nnc_violations (n.pred, n.arity, n.pos) ic d

(* Early-exit path: stop at the first witness instead of materializing the
   full violation list.  [first_violation_of] returns the same violation
   [violations] would list first. *)
let first_violation_of d ic =
  match ic with
  | Ic.Constr.Generic g ->
      let exception Witness of violation in
      (try
         iter_generic_violations d g ic ~f:(fun v -> raise (Witness v));
         None
       with Witness v -> Some v)
  | Ic.Constr.NotNull n ->
      let pred, pos = (n.pred, n.pos) in
      let exception Witness of Relational.Tuple.t in
      (try
         Instance.iter_matching d pred ~pos:(pos - 1) Value.null (fun t ->
             raise (Witness t));
         None
       with Witness t ->
         Some
           {
             ic;
             theta = Assign.empty;
             matched = [ Relational.Atom.of_tuple pred t ];
           })

let has_violation d ic = Option.is_some (first_violation_of d ic)
let satisfies d ic = not (has_violation d ic)

let check d ics = List.concat_map (violations d) ics
let consistent d ics = List.for_all (satisfies d) ics

(* ------------------------------------------------------------------ *)
(* Literal Definition 4: project, then evaluate psi_N on the projection. *)

let satisfies_literal d ic =
  match ic with
  | Ic.Constr.NotNull _ -> satisfies d ic
  | Ic.Constr.Generic g ->
      let da = Ic.Relevant.project_instance ic d in
      let ante_p = List.map (Ic.Relevant.project_atom ic) g.Ic.Constr.ante in
      let cons_p = List.map (Ic.Relevant.project_atom ic) g.Ic.Constr.cons in
      let relevant = Ic.Relevant.relevant_universal_vars g in
      let matches = Assign.join da Assign.empty ante_p in
      List.for_all
        (fun theta ->
          let null_escape =
            List.exists
              (fun x ->
                match Assign.find theta x with
                | Some v -> Value.is_null v
                | None -> false)
              relevant
          in
          null_escape
          || List.exists (fun atom -> Assign.exists_match da theta atom) cons_p
          || phi_holds g theta)
        matches

(* ------------------------------------------------------------------ *)
(* Canonical violation order *)

let compare_violation a b =
  (* matched is in antecedent order, so (ic, matched) determines theta *)
  match Ic.Constr.compare a.ic b.ic with
  | 0 -> List.compare Relational.Atom.compare a.matched b.matched
  | c -> c

let canonical_violations vs = List.sort_uniq compare_violation vs

(* ------------------------------------------------------------------ *)
(* Admission checking *)

(* Violations of a generic constraint that involve one given ground atom,
   computed by {e seeding} the antecedent join instead of enumerating every
   violation and filtering: for each antecedent position whose predicate
   matches, unify the atom against it, and run the join from the resulting
   partial assignment — the index probes of [Assign] then restrict every
   other antecedent atom to the seed's bindings.  The same match can be
   reached from several seed positions, so callers deduplicate
   ({!canonical_violations}). *)
let iter_seeded_violations d g ic atom ~f =
  let pred = Relational.Atom.pred atom in
  let args = Relational.Atom.args atom in
  let relevant = Ic.Relevant.relevant_universal_vars g in
  let universal = Ic.Constr.universal_vars g in
  let checkers =
    List.map (Assign.prepared_exists d ~bound:universal) g.Ic.Constr.cons
  in
  let fast_consequent theta =
    List.exists (fun check -> check theta) checkers || phi_holds g theta
  in
  let null_escape theta =
    List.exists
      (fun x ->
        match Assign.find theta x with
        | Some v -> Value.is_null v
        | None -> false)
      relevant
  in
  List.iter
    (fun ante_atom ->
      if String.equal (Ic.Patom.pred ante_atom) pred then
        match Assign.match_tuple Assign.empty (Ic.Patom.terms ante_atom) args with
        | None -> ()
        | Some seed ->
            Assign.iter_join_with_witness d seed g.Ic.Constr.ante
              ~f:(fun theta witness ->
                if
                  List.exists (Relational.Atom.equal atom) witness
                  && not (null_escape theta || fast_consequent theta)
                then f { ic; theta; matched = witness }))
    g.Ic.Constr.ante

(* One seeded pass per relevant constraint, instead of materializing every
   violation of every constraint and filtering afterwards.  Constraints
   that do not mention the atom's predicate in their antecedent cannot
   match it and are skipped outright; for NNCs the answer is a direct
   probe of the atom itself.  The result is canonical (sorted,
   deduplicated). *)
let violations_involving d ics atom =
  let pred = Relational.Atom.pred atom in
  let acc = ref [] in
  List.iter
    (fun ic ->
      if List.mem pred (Ic.Constr.preds ic) then
        match ic with
        | Ic.Constr.Generic g ->
            iter_seeded_violations d g ic atom ~f:(fun v -> acc := v :: !acc)
        | Ic.Constr.NotNull n ->
            if
              String.equal n.pred pred
              && Relational.Atom.arity atom = n.arity
              && Value.is_null (Relational.Atom.args atom).(n.pos - 1)
              && Instance.mem atom d
            then acc := { ic; theta = Assign.empty; matched = [ atom ] } :: !acc)
    ics;
  canonical_violations !acc

(* ------------------------------------------------------------------ *)
(* Incremental maintenance.

   The violation set of a constraint is a function of the tuples of the
   predicates it mentions alone, so an update batch leaves every
   constraint whose relations are untouched with exactly its previous
   violations.  Touched constraints split further: when the delta stays
   out of a generic constraint's consequent, insertions can only create
   violations (every new antecedent match uses a new tuple, and none of
   its witnesses changed) and deletions can only remove them — one
   seeded [violations_involving] probe per inserted atom plus a filter
   over the previous violations replaces the full join.

   A constraint whose consequent predicates are touched used to be
   re-evaluated from scratch; it is now maintained by probes seeded on the
   delta's atoms:

   - a previous violation survives unless a matched atom was deleted or an
     inserted tuple now witnesses its consequent (one prepared probe per
     kept violation);
   - an inserted antecedent atom contributes its seeded violations as in
     the fast tier;
   - a deleted atom matching a consequent pattern may orphan antecedent
     matches it was the last witness of.  Unifying the deleted tuple
     against the consequent atom and restricting to the constraint's
     universal variables yields exactly the bindings the lost witness
     could have served; the antecedent join seeded with that restriction
     re-derives every such match, and the standard violation test (on the
     new instance) filters the ones that still have another witness.

   Completeness: a violation of the new instance either reuses only old
   tuples — then it was either already a violation (kept) or was silenced
   by a witness that must have been deleted (orphan seed finds it) — or
   matches an inserted tuple (insertion seed finds it).  The result is
   canonicalized, which also collapses seeds rediscovering the same
   match. *)

type delta_stats = { reused : int; fast : int; rescanned : int }

let check_delta ~before ~inserted ~deleted d ics =
  let touched_preds =
    List.sort_uniq String.compare
      (List.map Relational.Atom.pred (inserted @ deleted))
  in
  let reused = ref 0 and fast = ref 0 and rescanned = ref 0 in
  let per_ic ic =
    let preds = Ic.Constr.preds ic in
    if not (List.exists (fun p -> List.mem p touched_preds) preds) then begin
      incr reused;
      List.filter (fun v -> Ic.Constr.equal v.ic ic) before
    end
    else
      match ic with
      | Ic.Constr.NotNull n ->
          (* per-tuple constraint: drop deleted offenders, add inserted
             ones — no other tuple can change its status *)
          incr fast;
          let offender a =
            String.equal (Relational.Atom.pred a) n.pred
            && Relational.Atom.arity a = n.arity
            && Value.is_null (Relational.Atom.args a).(n.pos - 1)
          in
          List.filter
            (fun v ->
              Ic.Constr.equal v.ic ic
              && not (List.exists
                          (fun a ->
                            List.exists (Relational.Atom.equal a) v.matched)
                          deleted))
            before
          @ List.filter_map
              (fun a ->
                if offender a then
                  Some { ic; theta = Assign.empty; matched = [ a ] }
                else None)
              inserted
      | Ic.Constr.Generic g ->
          let cons_touched =
            List.exists
              (fun p -> List.mem p touched_preds)
              (Ic.Constr.cons_preds ic)
          in
          if cons_touched then begin
            incr rescanned;
            let ante_preds = Ic.Constr.ante_preds ic in
            let kept =
              List.filter
                (fun v ->
                  Ic.Constr.equal v.ic ic
                  && (not
                        (List.exists
                           (fun a ->
                             List.exists (Relational.Atom.equal a) v.matched)
                           deleted))
                  && not (consequent_holds d g v.theta))
                before
            in
            let from_inserts =
              List.concat_map
                (fun a ->
                  if List.mem (Relational.Atom.pred a) ante_preds then
                    violations_involving d [ ic ] a
                  else [])
                inserted
            in
            let universal = Ic.Constr.universal_vars g in
            let orphans = ref [] in
            List.iter
              (fun a ->
                let pred = Relational.Atom.pred a in
                List.iter
                  (fun cons_atom ->
                    if String.equal (Ic.Patom.pred cons_atom) pred then
                      match
                        Assign.match_tuple Assign.empty
                          (Ic.Patom.terms cons_atom)
                          (Relational.Atom.args a)
                      with
                      | None -> ()
                      | Some theta0 ->
                          let seed = Assign.restrict theta0 universal in
                          let relevant = Ic.Relevant.relevant_universal_vars g in
                          Assign.iter_join_with_witness d seed g.Ic.Constr.ante
                            ~f:(fun theta witness ->
                              let null_escape =
                                List.exists
                                  (fun x ->
                                    match Assign.find theta x with
                                    | Some v -> Value.is_null v
                                    | None -> false)
                                  relevant
                              in
                              if not (null_escape || consequent_holds d g theta)
                              then
                                orphans := { ic; theta; matched = witness } :: !orphans))
                  g.Ic.Constr.cons)
              deleted;
            kept @ from_inserts @ !orphans
          end
          else begin
            incr fast;
            let kept =
              List.filter
                (fun v ->
                  Ic.Constr.equal v.ic ic
                  && not
                       (List.exists
                          (fun a ->
                            List.exists (Relational.Atom.equal a) v.matched)
                          deleted))
                before
            in
            let fresh =
              List.concat_map
                (fun a ->
                  if List.mem (Relational.Atom.pred a) preds then
                    violations_involving d [ ic ] a
                  else [])
                inserted
            in
            kept @ fresh
          end
  in
  let result = canonical_violations (List.concat_map per_ic ics) in
  (result, { reused = !reused; fast = !fast; rescanned = !rescanned })

let first_violation d ics =
  List.fold_left
    (fun acc ic ->
      match acc with Some _ -> acc | None -> first_violation_of d ic)
    None ics

let can_insert d ics atom =
  let d' = Instance.add atom d in
  (* only the new tuple can be the source of fresh violations, but it can
     also invalidate nothing — a full recheck is avoided by restricting to
     constraints mentioning the predicate *)
  let relevant_ics =
    List.filter (fun ic -> List.mem (Relational.Atom.pred atom) (Ic.Constr.preds ic)) ics
  in
  match first_violation d' relevant_ics with
  | None -> Ok ()
  | Some v -> Error v

let can_delete d ics atom =
  let d' = Instance.remove atom d in
  let relevant_ics =
    List.filter (fun ic -> List.mem (Relational.Atom.pred atom) (Ic.Constr.preds ic)) ics
  in
  match first_violation d' relevant_ics with
  | None -> Ok ()
  | Some v -> Error v
