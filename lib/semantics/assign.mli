(** Variable assignments and pattern matching of constraint atoms against
    instances.

    Matching treats [null] as any other constant (structural equality), as
    prescribed for the evaluation of the transformed formula (4) — see
    Example 12, where [P2(null, b)] joins a [null] produced by [P1]. *)

type t

val empty : t
val find : t -> string -> Relational.Value.t option
val bind : t -> string -> Relational.Value.t -> t option
(** [None] when already bound to a different value. *)

val lookup_exn : t -> string -> Relational.Value.t
val bindings : t -> (string * Relational.Value.t) list
val of_list : (string * Relational.Value.t) list -> t
val restrict : t -> string list -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val value_of_term : t -> Ic.Term.t -> Relational.Value.t option
(** Constants map to themselves; variables through the assignment. *)

val match_tuple : t -> Ic.Term.t list -> Relational.Tuple.t -> t option
(** Unify a term list against a ground tuple, extending the assignment.
    Repeated variables must match equal values. *)

val atom_matches :
  Relational.Instance.t -> t -> Ic.Patom.t -> t list
(** All extensions of the assignment matching the atom against the
    instance's tuples for the atom's predicate. *)

val join : Relational.Instance.t -> t -> Ic.Patom.t list -> t list
(** All assignments extending the given one that satisfy the conjunction of
    atoms (the antecedent join). *)

val join_with_witness :
  Relational.Instance.t -> t -> Ic.Patom.t list -> (t * Relational.Atom.t list) list
(** Like {!join} but also returns the matched ground atoms, in antecedent
    order (witnesses for violation reporting and repair generation). *)

val iter_join_with_witness :
  Relational.Instance.t -> t -> Ic.Patom.t list ->
  f:(t -> Relational.Atom.t list -> unit) -> unit
(** Iterate {!join_with_witness} results as they are produced, without
    materializing the match list.  [f] may raise to abort the enumeration —
    consistency checks stop at the first witness this way
    ({!Nullsat.has_violation}). *)

val exists_match : Relational.Instance.t -> t -> Ic.Patom.t -> bool
(** Is there a tuple matching the atom under the (partial) assignment?
    Unbound variables act as wildcards, consistently for repeated ones. *)

val prepared_exists :
  Relational.Instance.t -> bound:string list -> Ic.Patom.t -> t -> bool
(** A reusable existence test for one atom: like {!exists_match}, but when
    some position of the atom holds a constant or a variable from [bound]
    (variables the caller guarantees to be bound in every assignment it
    will pass), the relation is probed through the instance's persistent
    per-attribute hash index on that position
    ({!Relational.Instance.exists_matching}).  Partial application
    ([let check = prepared_exists d ~bound atom in ...]) turns repeated
    consequent checks from relation scans into hash lookups. *)
