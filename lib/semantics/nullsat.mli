(** The paper's null-aware IC satisfaction [D |=_N psi] (Definitions 4-5).

    Two interchangeable implementations are provided:

    - {!satisfies} evaluates directly on the original instance: antecedent
      matches are enumerated on full tuples, the [IsNull] disjuncts are
      tested on the relevant universal variables, and the consequent is
      checked by pattern matching.  This is equivalent to Definition 4
      because join/consequent/[phi] variables are always relevant, and it
      yields violation witnesses in terms of original tuples (which the
      repair engine needs).
    - {!satisfies_literal} follows Definition 4 letter by letter: build
      [D^{A(psi)}], then evaluate the transformed formula [psi_N] on it.

    Their agreement is asserted by property tests. *)

type violation = {
  ic : Ic.Constr.t;
  theta : Assign.t;
      (** binding of the antecedent variables of the offending match *)
  matched : Relational.Atom.t list;
      (** the original antecedent tuples, in antecedent order (for an NNC,
          the single offending tuple) *)
}

val pp_violation : violation Fmt.t

val satisfies : Relational.Instance.t -> Ic.Constr.t -> bool
val satisfies_literal : Relational.Instance.t -> Ic.Constr.t -> bool

val has_violation : Relational.Instance.t -> Ic.Constr.t -> bool
(** [not (satisfies d ic)], stopping at the first witness: the antecedent
    join is aborted as soon as one violating match is found instead of
    materializing every violation.  {!satisfies}, {!consistent} and the
    admission checks all go through this path. *)

val violations : Relational.Instance.t -> Ic.Constr.t -> violation list
(** Empty iff {!satisfies}. *)

val check : Relational.Instance.t -> Ic.Constr.t list -> violation list
val consistent : Relational.Instance.t -> Ic.Constr.t list -> bool

val compare_violation : violation -> violation -> int
(** Total order by (constraint, matched tuples); [matched] is in antecedent
    order, so it determines the binding and this order has no duplicates
    within one instance's violation set. *)

val canonical_violations : violation list -> violation list
(** Sorted by {!compare_violation}, deduplicated — the canonical form the
    incremental maintainer ({!check_delta}) works with. *)

type delta_stats = {
  reused : int;     (** constraints whose relations the delta left untouched *)
  fast : int;       (** touched constraints updated by probes and filters *)
  rescanned : int;
      (** touched constraints whose consequent the delta reaches — once full
          re-evaluations, now maintained by joins seeded on the delta's
          atoms (kept-violation re-probes, insertion seeds, orphaned-witness
          seeds); the historical field name is kept for telemetry
          continuity *)
}

val check_delta :
  before:violation list ->
  inserted:Relational.Atom.t list ->
  deleted:Relational.Atom.t list ->
  Relational.Instance.t ->
  Ic.Constr.t list ->
  violation list * delta_stats
(** Incremental violation maintenance for the session engine: given the
    previous violation set [before] and the net effect of an update batch
    ([inserted] absent from the old instance, [deleted] present in it —
    see {!Delta.effective}), compute the violation set of the {e new}
    instance [d] touching only the constraints whose relations the delta
    mentions.  Untouched constraints keep their [before] violations;
    touched constraints whose consequent stays clear of the delta are
    updated by per-atom {!violations_involving} probes and a filter; the
    rest — where an insertion may silence an old violation and a deletion
    may orphan an old match — are maintained by antecedent joins seeded on
    each delta atom's bindings rather than re-evaluated from scratch.  The
    result equals [canonical_violations (check d ics)] (property-tested),
    in canonical order. *)

val consequent_holds :
  Relational.Instance.t -> Ic.Constr.generic -> Assign.t -> bool
(** Does the consequent of the (generic) constraint hold under a total
    antecedent assignment — some consequent atom has a matching tuple
    (existential variables as consistent wildcards) or some [phi] disjunct
    evaluates to true?  Exposed for the repair engine. *)

(** {2 Admission checking}

    Commercial DBMSs enforce ICs on updates: an insertion is rejected when
    it would create a violation (Example 5: inserting
    [Course(CS41, 18, null)] is rejected because professor 18 has no [Exp]
    tuple; Example 6: [Emp(32, null, 50)] fails the salary check).  These
    helpers check a single update against [|=_N] without rescanning the
    whole database: only violations {e involving the updated tuple} are
    examined. *)

val violations_involving :
  Relational.Instance.t -> Ic.Constr.t list -> Relational.Atom.t -> violation list
(** Violations of the instance whose antecedent match mentions the given
    atom (for NNCs: the offending atom itself), computed by seeding each
    antecedent join with the atom's bindings — index probes bounded by the
    atom's neighbourhood, never a full enumeration.  Canonically ordered. *)

val can_insert :
  Relational.Instance.t -> Ic.Constr.t list -> Relational.Atom.t ->
  (unit, violation) result
(** Would [D ∪ {a}] stay consistent?  [Error] carries a violation the
    insertion would create.  (An insertion can only add violations: the
    antecedent matches of [D] survive and the new tuple may both trigger
    antecedents and, for constraints it witnesses, silence none.) *)

val can_delete :
  Relational.Instance.t -> Ic.Constr.t list -> Relational.Atom.t ->
  (unit, violation) result
(** Would [D \ {a}] stay consistent?  Deletions can orphan tuples that the
    deleted atom was witnessing (referential constraints). *)
