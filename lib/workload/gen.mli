(** Deterministic synthetic workload generators for the benchmark harness.

    Every generator takes a [seed] and uses its own [Random.State], so bench
    tables are reproducible run to run. *)

type t = {
  label : string;
  d : Relational.Instance.t;
  ics : Ic.Constr.t list;
}

val fk_workload :
  ?seed:int -> n_parent:int -> n_child:int -> orphan_rate:float ->
  null_rate:float -> unit -> t
(** Parent [R(id, data)] with key [R[1]], child [S(sid, ref)] with a foreign
    key [S[2] -> R[1]].  [orphan_rate] of the children reference a missing
    parent; [null_rate] of all attribute positions (except the parent key)
    hold null. *)

val fk_workload_det :
  n_parent:int -> n_child:int -> orphans:int -> null_refs:int -> unit -> t
(** Deterministic variant of {!fk_workload}: exactly [orphans] children
    reference a missing parent and exactly [null_refs] further children
    carry a null reference (relevant to the FK under classic semantics but
    not under [|=_N]/simple match).  Used by the sweep tables E6-E8. *)

val fd_workload :
  ?seed:int -> ?width:int -> n:int -> dup_rate:float -> unit -> t
(** [R(key, value)] with the FD [key -> value]; [dup_rate] of the keys get
    [width - 1] (default [1]) extra, pairwise-conflicting values.  A
    conflicting key is a [width]-clique conflict component with [width]
    minimal repairs (keep exactly one value), while the enumerate search
    explores a state space exponential in [width] — the routing fast-path
    knob of bench table E18.  [width = 2] is byte-identical to the
    historical generator. *)

val check_workload :
  ?seed:int -> n:int -> viol_rate:float -> null_rate:float -> unit -> t
(** [Emp(id, name, salary)] with the check constraint [salary > 100]
    (Example 6); [viol_rate] of the salaries violate it, [null_rate] are
    null. *)

val chain_workload : ?seed:int -> n:int -> broken:int -> unit -> t
(** The UIC chain of Example 2 ([S -> Q], [Q -> R]) plus the RIC
    [Q -> exists y. T(x,y)], with [n] base [S]-tuples of which [broken]
    are missing their [Q]/[R]/[T] support. *)

val disjunctive_uic : width:int -> t
(** One UIC with [width] consequent disjuncts
    ([P(x) -> Q1(x) | ... | Qk(x)]) over a two-tuple instance — drives the
    [2^width] Q'/Q'' rule expansion of Definition 9 (bench table E5). *)

val bilateral_loop : ?seed:int -> n:int -> unit -> t
(** [P(x,y) -> P(y,x)] over a random P — violates Theorem 5's condition and
    grounds to a non-HCF program (bench table E4). *)

val clusters_workload : ?padding:int -> ?weight:int -> k:int -> unit -> t
(** [k] independent conflict clusters over {e shared} predicates
    ([S(a_i)] violating [S(x) -> exists y. R(x,y)], whose insertion repair
    cascades into [R(x,y) -> T(x)]): the IC-level decomposition of
    {!Core.Decompose} cannot split them, the tuple-level conflict graph of
    {!Repair.Decompose} extracts [k] constant-size components.
    [Rep(D, IC)] has [2^k] repairs.  [padding] adds fully supported
    [S/R/T] triples that stay in the untouched core (bench table E15).

    [weight] (default [1] — the workload above, unchanged) [>= 2] swaps
    each cluster's bare [S(a_i)] for [weight] FD-conflicting
    [R(a_i, c_j)] tuples (plus their [S]/[T] anchors) under an added FD
    [R[1] -> R[2]]: per-component search cost becomes exponential in
    [weight] with [weight] minimal repairs per component
    ([weight^k] in total), which is what the parallel speedup table E16
    scales against [--jobs]. *)

val random_case : ?seed:int -> unit -> t
(** A small random instance over [P/1, Q/1, R/2, S/1] (values from
    [{a, b, c, null}]) with 1-3 random constraints drawn from a menu of
    UICs, a RIC, an FD, NNCs and a denial — the differential-test
    generator comparing decomposed against monolithic repair enumeration
    and CQA. *)

val route_case : ?seed:int -> unit -> t
(** {!random_case}'s shape with a tier-stratified constraint menu (FDs,
    denials, NNCs, UICs, a RIC, a bilateral pair, a general-existential
    constraint) so differential tests of the routing layer draw cases
    landing on every tier. *)

val denial_workload : ?seed:int -> n:int -> viol_rate:float -> unit -> t
(** Denial constraint [P(x,y), P(y,x) -> false] (no bilateral predicates:
    always HCF, Corollary 1). *)

val scale_workload :
  ?seed:int -> ?tuples:int -> ?null_rate:float -> ?fd_conflicts:int ->
  ?orphans:int -> unit -> t
(** The large-instance workload behind bench table E19 (and any future
    server bench): an FK chain with FD clusters at parameterized
    cardinality.  Parent [R(id, owner)] (~40% of [tuples], int keys, owners
    drawn from a small pool, [null_rate] of them null) under the key
    [R[1]], the NNC [R[1] NOT NULL], and the foreign key [S[2] -> R[1]]
    over child [S(cid, ref)] (the remaining ~60%).  Exactly [fd_conflicts]
    duplicated keys (one FD 2-clique each) and [orphans] dangling
    references keep the conflict count — and hence repair/CQA cost —
    independent of [tuples], so the tables measure storage and checking
    throughput, not search growth; [null_rate] of the references are null
    and exercise the null-escape of [|=_N] at scale.  Total cardinality is
    exactly [tuples]. *)
