module Instance = Relational.Instance
module Value = Relational.Value

type t = {
  label : string;
  d : Relational.Instance.t;
  ics : Ic.Constr.t list;
}

let v = Ic.Term.var
let atom p ts = Ic.Patom.make p ts

let sym prefix i = Value.str (Printf.sprintf "%s%d" prefix i)

let maybe_null rng rate value =
  if Random.State.float rng 1.0 < rate then Value.null else value

let fk_workload ?(seed = 42) ~n_parent ~n_child ~orphan_rate ~null_rate () =
  let rng = Random.State.make [| seed |] in
  let parents =
    List.init n_parent (fun i ->
        ("R", [ sym "p" i; maybe_null rng null_rate (sym "d" i) ]))
  in
  let children =
    List.init n_child (fun i ->
        let orphan = Random.State.float rng 1.0 < orphan_rate in
        let target =
          if orphan then sym "missing" i
          else sym "p" (Random.State.int rng (max 1 n_parent))
        in
        ("S", [ maybe_null rng null_rate (sym "c" i); target ]))
  in
  {
    label = Printf.sprintf "fk n_parent=%d n_child=%d orphan=%.2f null=%.2f"
        n_parent n_child orphan_rate null_rate;
    d = Instance.of_list (parents @ children);
    ics =
      Ic.Builder.key ~name_prefix:"key_r" ~pred:"R" ~arity:2 ~key:[ 1 ] ()
      @ [
          Ic.Builder.foreign_key ~name:"fk" ~child:"S" ~child_arity:2
            ~child_cols:[ 2 ] ~parent:"R" ~parent_arity:2 ~parent_cols:[ 1 ] ();
          Ic.Constr.not_null ~name:"nn_r1" ~pred:"R" ~arity:2 ~pos:1 ();
        ];
  }

let fk_workload_det ~n_parent ~n_child ~orphans ~null_refs () =
  let parents =
    List.init n_parent (fun i -> ("R", [ sym "p" i; sym "d" i ]))
  in
  let children =
    List.init n_child (fun i ->
        let target =
          if i < orphans then sym "missing" i
          else if i < orphans + null_refs then Value.null
          else sym "p" (i mod max 1 n_parent)
        in
        ("S", [ sym "c" i; target ]))
  in
  {
    label =
      Printf.sprintf "fk-det parents=%d children=%d orphans=%d null_refs=%d"
        n_parent n_child orphans null_refs;
    d = Instance.of_list (parents @ children);
    ics =
      Ic.Builder.key ~name_prefix:"key_r" ~pred:"R" ~arity:2 ~key:[ 1 ] ()
      @ [
          Ic.Builder.foreign_key ~name:"fk" ~child:"S" ~child_arity:2
            ~child_cols:[ 2 ] ~parent:"R" ~parent_arity:2 ~parent_cols:[ 1 ] ();
          Ic.Constr.not_null ~name:"nn_r1" ~pred:"R" ~arity:2 ~pos:1 ();
        ];
  }

let fd_workload ?(seed = 42) ?(width = 2) ~n ~dup_rate () =
  let rng = Random.State.make [| seed |] in
  (* the first conflicting value keeps its historical name so [width = 2]
     (the default) stays byte-identical to the pre-width generator *)
  let extra i j =
    if j = 0 then sym "w" i else Value.str (Printf.sprintf "w%d_%d" j i)
  in
  let rows =
    List.concat
      (List.init n (fun i ->
           let base = ("R", [ sym "k" i; sym "v" i ]) in
           if Random.State.float rng 1.0 < dup_rate then
             base
             :: List.init (width - 1) (fun j -> ("R", [ sym "k" i; extra i j ]))
           else [ base ]))
  in
  {
    label =
      (if width = 2 then Printf.sprintf "fd n=%d dup=%.2f" n dup_rate
       else Printf.sprintf "fd n=%d dup=%.2f width=%d" n dup_rate width);
    d = Instance.of_list rows;
    ics = [ Ic.Builder.functional_dependency ~name:"fd" ~pred:"R" ~arity:2 ~lhs:[ 1 ] ~rhs:2 () ];
  }

let check_workload ?(seed = 42) ~n ~viol_rate ~null_rate () =
  let rng = Random.State.make [| seed |] in
  let rows =
    List.init n (fun i ->
        let salary =
          if Random.State.float rng 1.0 < null_rate then Value.null
          else if Random.State.float rng 1.0 < viol_rate then
            Value.int (Random.State.int rng 100)
          else Value.int (101 + Random.State.int rng 900)
        in
        ("Emp", [ Value.int i; maybe_null rng null_rate (sym "n" i); salary ]))
  in
  {
    label = Printf.sprintf "check n=%d viol=%.2f null=%.2f" n viol_rate null_rate;
    d = Instance.of_list rows;
    ics =
      [
        Ic.Builder.check ~name:"salary_pos"
          (atom "Emp" [ v "i"; v "n"; v "s" ])
          [ Ic.Builtin.cmp Ic.Builtin.Gt (Ic.Builtin.evar "s") (Ic.Builtin.eint 100) ];
      ];
  }

let chain_workload ?(seed = 42) ~n ~broken () =
  let rng = Random.State.make [| seed |] in
  ignore rng;
  let supported =
    List.concat
      (List.init (max 0 (n - broken)) (fun i ->
           [
             ("S", [ sym "a" i ]);
             ("Q", [ sym "a" i ]);
             ("R", [ sym "a" i ]);
             ("T", [ sym "a" i; sym "b" i ]);
           ]))
  in
  let dangling = List.init broken (fun i -> ("S", [ sym "x" i ])) in
  {
    label = Printf.sprintf "chain n=%d broken=%d" n broken;
    d = Instance.of_list (supported @ dangling);
    ics =
      [
        Ic.Constr.generic ~name:"ic1" ~ante:[ atom "S" [ v "x" ] ]
          ~cons:[ atom "Q" [ v "x" ] ] ();
        Ic.Constr.generic ~name:"ic2" ~ante:[ atom "Q" [ v "x" ] ]
          ~cons:[ atom "R" [ v "x" ] ] ();
        Ic.Constr.generic ~name:"ic3" ~ante:[ atom "Q" [ v "x" ] ]
          ~cons:[ atom "T" [ v "x"; v "y" ] ] ();
      ];
  }

let disjunctive_uic ~width =
  let cons = List.init width (fun j -> atom (Printf.sprintf "Q%d" (j + 1)) [ v "x" ]) in
  {
    label = Printf.sprintf "disjunctive width=%d" width;
    d = Instance.of_list [ ("P", [ Value.str "a" ]); ("P", [ Value.str "b" ]) ];
    ics = [ Ic.Constr.generic ~name:"wide" ~ante:[ atom "P" [ v "x" ] ] ~cons () ];
  }

let bilateral_loop ?(seed = 42) ~n () =
  let rng = Random.State.make [| seed |] in
  let rows =
    List.init n (fun i ->
        ("P", [ sym "a" i; sym "a" (Random.State.int rng n) ]))
  in
  {
    label = Printf.sprintf "bilateral n=%d" n;
    d = Instance.of_list rows;
    ics =
      [
        Ic.Constr.generic ~name:"sym"
          ~ante:[ atom "P" [ v "x"; v "y" ] ]
          ~cons:[ atom "P" [ v "y"; v "x" ] ]
          ();
      ];
  }

let clusters_workload ?(padding = 0) ?(weight = 1) ~k () =
  (* k independent conflict clusters over SHARED predicates, so the
     IC-level (predicate-overlap) decomposition cannot split them but the
     tuple-level conflict graph can: cluster i is a bare S(a_i) violating
     S(x) -> exists y. R(x,y); repairing by insertion fires
     R(x,y) -> T(x) in cascade.  Each cluster has exactly two repairs
     (delete S(a_i), or insert R(a_i, null) and T(a_i)), so Rep(D, IC) has
     2^k elements while the per-component searches stay constant-size.
     [padding] adds fully supported S/R/T triples that end up in the
     untouched core (their S -> R potential violations exercise the
     support-atom machinery).

     [weight >= 2] makes each cluster's component search expensive instead
     of constant-size: cluster i becomes S(a_i), T(a_i) and [weight]
     FD-conflicting tuples R(a_i, c_0) .. R(a_i, c_{weight-1}) under the
     added FD R[1] -> R[2].  The minimal repairs keep exactly one of the
     conflicting R-tuples (deleting them all is dominated: it forces a
     second fix for S(a_i)), so each component has [weight] repairs and a
     search space exponential in [weight], while the components stay
     pairwise independent and the recombination exact — the knob the
     parallel speedup table E16 turns. *)
  let clusters =
    if weight <= 1 then List.init k (fun i -> [ ("S", [ sym "a" i ]) ])
    else
      List.init k (fun i ->
          ("S", [ sym "a" i ]) :: ("T", [ sym "a" i ])
          :: List.init weight (fun j -> ("R", [ sym "a" i; sym "c" j ])))
  in
  let clusters = List.concat clusters in
  let pad =
    List.concat
      (List.init padding (fun j ->
           [
             ("S", [ sym "p" j ]);
             ("R", [ sym "p" j; sym "b" j ]);
             ("T", [ sym "p" j ]);
           ]))
  in
  {
    label =
      (if weight <= 1 then Printf.sprintf "clusters k=%d padding=%d" k padding
       else
         Printf.sprintf "clusters k=%d padding=%d weight=%d" k padding weight);
    d = Instance.of_list (clusters @ pad);
    ics =
      [
        Ic.Constr.generic ~name:"s_r"
          ~ante:[ atom "S" [ v "x" ] ]
          ~cons:[ atom "R" [ v "x"; v "y" ] ]
          ();
        Ic.Constr.generic ~name:"r_t"
          ~ante:[ atom "R" [ v "x"; v "y" ] ]
          ~cons:[ atom "T" [ v "x" ] ]
          ();
      ]
      @
      if weight <= 1 then []
      else
        [
          Ic.Builder.functional_dependency ~name:"fd_r" ~pred:"R" ~arity:2
            ~lhs:[ 1 ] ~rhs:2 ();
        ];
  }

let random_case ?(seed = 42) () =
  (* Small random schema, instance and constraint set for differential
     tests (decomposed vs monolithic repairs and CQA).  Kept tiny so the
     exhaustive searches finish instantly even over ~10^3 cases. *)
  let rng = Random.State.make [| seed; 0x5eed |] in
  let pool = [| Value.str "a"; Value.str "b"; Value.str "c"; Value.null |] in
  let pick () = pool.(Random.State.int rng (Array.length pool)) in
  let tuples pred arity =
    List.init
      (Random.State.int rng 4)
      (fun _ -> (pred, List.init arity (fun _ -> pick ())))
  in
  let d =
    Instance.of_list
      (tuples "P" 1 @ tuples "Q" 1 @ tuples "R" 2 @ tuples "S" 1)
  in
  let menu =
    [|
      (fun () ->
        Ic.Constr.generic ~name:"p_q"
          ~ante:[ atom "P" [ v "x" ] ]
          ~cons:[ atom "Q" [ v "x" ] ]
          ());
      (fun () ->
        Ic.Constr.generic ~name:"p_r"
          ~ante:[ atom "P" [ v "x" ] ]
          ~cons:[ atom "R" [ v "x"; v "y" ] ]
          ());
      (fun () ->
        Ic.Constr.generic ~name:"r_s"
          ~ante:[ atom "R" [ v "x"; v "y" ] ]
          ~cons:[ atom "S" [ v "x" ] ]
          ());
      (fun () ->
        Ic.Builder.functional_dependency ~name:"fd_r" ~pred:"R" ~arity:2
          ~lhs:[ 1 ] ~rhs:2 ());
      (fun () -> Ic.Constr.not_null ~name:"nn_r2" ~pred:"R" ~arity:2 ~pos:2 ());
      (fun () -> Ic.Constr.not_null ~name:"nn_p1" ~pred:"P" ~arity:1 ~pos:1 ());
      (fun () ->
        Ic.Builder.denial ~name:"no_ps" [ atom "P" [ v "x" ]; atom "S" [ v "x" ] ]);
      (fun () ->
        Ic.Constr.generic ~name:"q_p"
          ~ante:[ atom "Q" [ v "x" ] ]
          ~cons:[ atom "P" [ v "x" ] ]
          ());
    |]
  in
  let n_ics = 1 + Random.State.int rng 3 in
  let ics =
    List.init n_ics (fun _ -> menu.(Random.State.int rng (Array.length menu)) ())
  in
  (* deduplicate by label so the constraint list is a set *)
  let ics =
    List.fold_left
      (fun acc ic ->
        if List.exists (fun ic' -> Ic.Constr.label ic' = Ic.Constr.label ic) acc
        then acc
        else ic :: acc)
      [] ics
    |> List.rev
  in
  { label = Printf.sprintf "random seed=%d" seed; d; ics }

let route_case ?(seed = 42) () =
  (* Like {!random_case}, but the constraint menu is stratified to exercise
     every routing tier: FDs, denials and NNCs (Direct candidates), UICs
     and a RIC (Shifted), a bilateral UIC pair (Disjunctive) and a
     general-existential constraint (Enumerated). *)
  let rng = Random.State.make [| seed; 0x40e |] in
  let pool = [| Value.str "a"; Value.str "b"; Value.str "c"; Value.null |] in
  let pick () = pool.(Random.State.int rng (Array.length pool)) in
  let tuples pred arity =
    List.init
      (Random.State.int rng 4)
      (fun _ -> (pred, List.init arity (fun _ -> pick ())))
  in
  let d =
    Instance.of_list
      (tuples "P" 1 @ tuples "Q" 1 @ tuples "R" 2 @ tuples "S" 1)
  in
  let menu =
    [|
      (fun () ->
        Ic.Builder.functional_dependency ~name:"fd_r" ~pred:"R" ~arity:2
          ~lhs:[ 1 ] ~rhs:2 ());
      (fun () ->
        Ic.Builder.denial ~name:"no_ps" [ atom "P" [ v "x" ]; atom "S" [ v "x" ] ]);
      (fun () ->
        Ic.Builder.denial ~name:"no_sym"
          [ atom "R" [ v "x"; v "y" ]; atom "R" [ v "y"; v "x" ] ]);
      (fun () -> Ic.Constr.not_null ~name:"nn_r2" ~pred:"R" ~arity:2 ~pos:2 ());
      (fun () -> Ic.Constr.not_null ~name:"nn_p1" ~pred:"P" ~arity:1 ~pos:1 ());
      (fun () ->
        Ic.Constr.generic ~name:"p_q"
          ~ante:[ atom "P" [ v "x" ] ]
          ~cons:[ atom "Q" [ v "x" ] ]
          ());
      (fun () ->
        Ic.Constr.generic ~name:"q_p"
          ~ante:[ atom "Q" [ v "x" ] ]
          ~cons:[ atom "P" [ v "x" ] ]
          ());
      (fun () ->
        Ic.Constr.generic ~name:"p_r"
          ~ante:[ atom "P" [ v "x" ] ]
          ~cons:[ atom "R" [ v "x"; v "y" ] ]
          ());
      (fun () ->
        Ic.Constr.generic ~name:"pq_r"
          ~ante:[ atom "P" [ v "x" ]; atom "Q" [ v "x" ] ]
          ~cons:[ atom "R" [ v "x"; v "y" ] ]
          ());
    |]
  in
  let n_ics = 1 + Random.State.int rng 3 in
  let ics =
    List.init n_ics (fun _ -> menu.(Random.State.int rng (Array.length menu)) ())
  in
  let ics =
    List.fold_left
      (fun acc ic ->
        if List.exists (fun ic' -> Ic.Constr.label ic' = Ic.Constr.label ic) acc
        then acc
        else ic :: acc)
      [] ics
    |> List.rev
  in
  { label = Printf.sprintf "route seed=%d" seed; d; ics }

let denial_workload ?(seed = 42) ~n ~viol_rate () =
  let rng = Random.State.make [| seed |] in
  let rows =
    List.concat
      (List.init n (fun i ->
           let j = Random.State.int rng n in
           let base = ("P", [ sym "a" i; sym "a" j ]) in
           if Random.State.float rng 1.0 < viol_rate then
             [ base; ("P", [ sym "a" j; sym "a" i ]) ]
           else [ base ]))
  in
  {
    label = Printf.sprintf "denial n=%d viol=%.2f" n viol_rate;
    d = Instance.of_list rows;
    ics =
      [
        Ic.Builder.denial ~name:"no_sym"
          [ atom "P" [ v "x"; v "y" ]; atom "P" [ v "y"; v "x" ] ];
      ];
  }

let scale_workload ?(seed = 42) ?(tuples = 100_000) ?(null_rate = 0.01)
    ?(fd_conflicts = 4) ?(orphans = 4) () =
  let rng = Random.State.make [| seed; tuples |] in
  (* integer ids intern densely; owners draw from a bounded pool so the FD
     key side dominates the symbol table, as real dimension tables do *)
  let conflicts = min fd_conflicts (max 0 (tuples - 2)) in
  let base = max 2 (tuples - conflicts) in
  let n_parent = max 1 (base * 2 / 5) in
  let n_child = base - n_parent in
  let owners = max 2 (n_parent / 16) in
  let parents =
    List.init n_parent (fun i ->
        let owner =
          maybe_null rng null_rate (Value.str (Printf.sprintf "o%d" (i mod owners)))
        in
        ("R", [ Value.int i; owner ]))
  in
  let conflict_rows =
    (* duplicate an existing key with a fresh owner: one FD 2-clique each *)
    List.init conflicts (fun j ->
        let key = Random.State.int rng (max 1 n_parent) in
        ("R", [ Value.int key; Value.str (Printf.sprintf "dup%d" j) ]))
  in
  let n_orphans = min orphans n_child in
  let children =
    List.init n_child (fun i ->
        let target =
          if i < n_orphans then Value.int (n_parent + 1 + i)
          else
            maybe_null rng null_rate
              (Value.int (Random.State.int rng (max 1 n_parent)))
        in
        ("S", [ Value.int (1_000_000_000 + i); target ]))
  in
  {
    label =
      Printf.sprintf "scale n=%d null=%.3f conflicts=%d orphans=%d" tuples
        null_rate conflicts n_orphans;
    d = Instance.of_list (parents @ conflict_rows @ children);
    ics =
      Ic.Builder.key ~name_prefix:"key_r" ~pred:"R" ~arity:2 ~key:[ 1 ] ()
      @ [
          Ic.Builder.foreign_key ~name:"fk" ~child:"S" ~child_arity:2
            ~child_cols:[ 2 ] ~parent:"R" ~parent_arity:2 ~parent_cols:[ 1 ] ();
          Ic.Constr.not_null ~name:"nn_r1" ~pred:"R" ~arity:2 ~pos:1 ();
        ];
  }
